//! The session-based serving engine: long-lived substrate, per-request
//! sessions, two-phase (prefill → decode) incremental batched serving.
//!
//! An [`Engine`] owns the model weights, accelerator architecture, decode
//! scheduler and energy model **once**. Callers [`Engine::submit`]
//! [`Request`]s — each with its own prompt, generation limit, stop tokens,
//! eviction policy and [`Budget`] — and receive [`Session`] handles. A
//! session moves through a phase machine ([`SessionPhase`]):
//! `Prefilling → Decoding → Finished`.
//!
//! **Submission is two-phase.** `submit` only validates the request,
//! reserves the session's peak KV footprint
//! ([`Request::reserve_resident_tokens`]) and enqueues it in the
//! `Prefilling` phase; the prompt is consumed *on the clock* by
//! subsequent [`Engine::step`] ticks, up to
//! [`EngineBuilder::prefill_chunk`] prompt tokens per tick
//! (Sarathi/vLLM-style chunked prefill). Every tick builds a **mixed
//! batch**: each decoding session advances by one token *and* each
//! prefilling session consumes its chunk, costed together through
//! [`DecodeScheduler::mixed_batch`] so the linear-layer weights stream
//! from HBM once per tick across both phases. A per-tick token budget
//! ([`EngineBuilder::tick_token_budget`]) is shared across phases: decode
//! tokens are never throttled, prefill chunks are dealt the remainder in
//! session order. Each tick yields one [`TokenEvent`] per session that
//! advanced — [`TokenEvent::Generated`] for decode,
//! [`TokenEvent::PrefillProgress`] for prefill — so callers can stream
//! both output tokens and time-to-first-token progress.
//!
//! **Compatibility: instant prefill.** With the default
//! `prefill_chunk = usize::MAX` the whole prompt is consumed
//! synchronously (and cost-free) inside `submit`, exactly as the
//! pre-chunking engine did: token streams, eviction counts, tick counts
//! and per-request reports are byte-identical, which the integration and
//! property tests pin down. A finite chunk changes only *when* work lands
//! on the clock, never *which* tokens a request generates — chunked
//! prefill observes attention scores without evicting, exactly like
//! instant prefill (VEDA Fig. 3's reserved + voting stages).
//!
//! With [`EngineBuilder::decode_threads`] the per-session work of a tick
//! (decode steps *and* prefill chunks) fans out across scoped worker
//! threads — order-preserving and byte-identical to the serial schedule —
//! while each session's forward pass runs through its own reusable
//! [`ForwardScratch`], so steady-state decode performs zero per-token
//! heap allocations.
//!
//! Per-request accounting stays single-sequence and decode-only: each
//! finished session yields the exact [`SimulationReport`] the legacy
//! one-shot [`crate::Simulation::run`] would produce for the same prompt —
//! the determinism invariant the integration tests pin down. Batch-level
//! throughput, energy and on-clock prefill tokens are aggregated
//! separately into an [`EngineReport`].
//!
//! VEDA's layer-wise voting eviction protocol runs per session: each
//! session instantiates its own per-layer policy stack via
//! [`PolicyKind::build`], observes its own attention scores, and evicts
//! from its own [`SequenceState`]. Finished sessions free their KV state
//! immediately.
//!
//! For serving layers (admission control, preemptive scheduling) the
//! engine exposes capacity introspection and session lifecycle hooks:
//! [`Engine::kv_bytes_active`] / [`Engine::session_kv_bytes`] account
//! resident KV bytes, [`Engine::pause`] / [`Engine::resume`] take a
//! session out of (and back into) the batched tick without touching its
//! KV state — a paused session's token stream continues exactly where it
//! left off, because each session decodes greedily from its own logits —
//! and [`Engine::tighten_budget`] shrinks a session's resident cap under
//! memory pressure (the next tick evicts down to it).

use std::collections::BTreeMap;

use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_accel::attention::decode_attention_cycles;
use veda_accel::schedule::{DecodeScheduler, LlamaShape, PrefillChunk};
use veda_cost::EnergyModel;
use veda_eviction::{EvictionPolicy, PolicyKind};
use veda_mem::HbmConfig;
use veda_model::{ForwardScratch, ModelConfig, SequenceState, TransformerModel};
use veda_telemetry::{TraceEventKind, Tracer};

use crate::error::BuildError;
use crate::prefix::{
    PrefixCache, PrefixCacheConfig, PrefixCacheStats, PrefixPin, PrefixTransfer, PrefixTransferKind,
};
use crate::simulator::SimulationReport;
use veda_model::ScoreBuffer;

/// KV cache budget of one request.
///
/// Replaces the legacy `Option<f64>` compression-ratio / `Option<usize>`
/// fixed-budget pair (and its `usize::MAX / 2` "no budget" sentinel) with
/// one explicit enum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Never evict for capacity (the full-cache configuration).
    Unbounded,
    /// Hold the cache at a fixed number of resident tokens (the
    /// language-modeling configuration).
    Fixed(usize),
    /// Hold the cache at `round(r × prompt_len)` tokens, `r ∈ (0, 1]` (the
    /// paper's Fig. 3 configuration).
    Ratio(f64),
}

impl Budget {
    /// Checks the budget is usable.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidBudget`] for `Fixed(0)` or a ratio
    /// outside `(0, 1]`.
    pub fn validate(self) -> Result<(), BuildError> {
        match self {
            Budget::Unbounded => Ok(()),
            Budget::Fixed(0) => Err(BuildError::InvalidBudget("fixed budget must be positive".into())),
            Budget::Fixed(_) => Ok(()),
            Budget::Ratio(r) if !(0.0..=1.0).contains(&r) || r == 0.0 || r.is_nan() => {
                Err(BuildError::InvalidBudget(format!("compression ratio {r} outside (0, 1]")))
            }
            Budget::Ratio(_) => Ok(()),
        }
    }

    /// Resolves to a concrete resident-token cap for a prompt of
    /// `prompt_len` tokens. `Unbounded` maps to a cap no sequence reaches.
    pub fn resolve(self, prompt_len: usize) -> usize {
        match self {
            Budget::Unbounded => usize::MAX / 2,
            Budget::Fixed(n) => n,
            Budget::Ratio(r) => ((prompt_len as f64 * r).round() as usize).max(1),
        }
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Budget::Unbounded => write!(f, "unbounded"),
            Budget::Fixed(n) => write!(f, "fixed:{n}"),
            Budget::Ratio(r) => write!(f, "ratio:{r}"),
        }
    }
}

impl std::str::FromStr for Budget {
    type Err = BuildError;

    /// Parses `"unbounded"` / `"full"`, `"fixed:N"` (or a bare integer),
    /// and `"ratio:R"` (or a bare float in `(0, 1]`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        let budget = match t.as_str() {
            "unbounded" | "full" | "none" => Budget::Unbounded,
            _ => {
                if let Some(n) = t.strip_prefix("fixed:") {
                    Budget::Fixed(n.parse().map_err(|_| {
                        BuildError::InvalidBudget(format!("cannot parse fixed budget from {s:?}"))
                    })?)
                } else if let Some(r) = t.strip_prefix("ratio:") {
                    Budget::Ratio(r.parse().map_err(|_| {
                        BuildError::InvalidBudget(format!("cannot parse ratio budget from {s:?}"))
                    })?)
                } else if let Ok(n) = t.parse::<usize>() {
                    Budget::Fixed(n)
                } else if let Ok(r) = t.parse::<f64>() {
                    Budget::Ratio(r)
                } else {
                    return Err(BuildError::InvalidBudget(format!("cannot parse budget from {s:?}")));
                }
            }
        };
        budget.validate()?;
        Ok(budget)
    }
}

/// One generation request: a prompt plus per-request decode configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Prompt token ids (must be non-empty and in-vocabulary).
    pub prompt: Vec<usize>,
    /// Maximum number of tokens to generate.
    pub max_new_tokens: usize,
    /// Eviction policy for this request's sessions.
    pub policy: PolicyKind,
    /// KV cache budget for this request.
    pub budget: Budget,
    /// Token ids that end generation early (the stop token is kept in the
    /// output).
    pub stop_tokens: Vec<usize>,
}

impl Request {
    /// A request with the workspace-default policy (voting) and budget
    /// (ratio 0.5), matching [`crate::SimulationBuilder`] defaults.
    pub fn new(prompt: impl Into<Vec<usize>>, max_new_tokens: usize) -> Self {
        Self {
            prompt: prompt.into(),
            max_new_tokens,
            policy: PolicyKind::Voting,
            budget: Budget::Ratio(0.5),
            stop_tokens: Vec::new(),
        }
    }

    /// Sets the eviction policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the cache budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the stop tokens.
    pub fn stop_tokens(mut self, stop_tokens: impl Into<Vec<usize>>) -> Self {
        self.stop_tokens = stop_tokens.into();
        self
    }

    /// Peak resident tokens this request can reach if nothing is ever
    /// evicted: the whole prompt plus every generated token. This is the
    /// conservative bound admission controllers reserve against —
    /// deliberately ignoring the cache [`Budget`], because eviction
    /// policies may refuse to evict below their protected prefix (the
    /// voting policy never evicts inside its reserved length), so the
    /// budget is not a guaranteed ceiling while `prompt + generated` is.
    ///
    /// The single source of the engine/admission reservation math: both
    /// [`crate::Engine::submit`]'s KV pre-allocation and the serving
    /// stack's `AdmissionController` derive from this helper, so the two
    /// accountings cannot drift.
    pub fn peak_resident_tokens(&self) -> usize {
        self.prompt.len() + self.max_new_tokens
    }

    /// KV rows the engine reserves up front for this request's session:
    /// the unbounded peak ([`Request::peak_resident_tokens`] plus one for
    /// the append-then-evict overshoot), clipped by the budget cap (plus
    /// two slots of slack, but never below the prompt — prefill never
    /// evicts, so the full prompt length is always reached). Reserving
    /// this up front means neither prefill nor steady-state decode ever
    /// reallocates KV storage.
    pub fn reserve_resident_tokens(&self) -> usize {
        let unbounded_peak = self.peak_resident_tokens() + 1;
        let resident_cap = self.budget.resolve(self.prompt.len());
        let capped_peak = resident_cap.saturating_add(2).max(self.prompt.len() + 2);
        unbounded_peak.min(capped_peak)
    }

    /// Whether this request's session can never be forced to evict: its
    /// resolved budget cap is at least its unbounded peak
    /// ([`Request::peak_resident_tokens`]), so the cache never exceeds
    /// the cap and no eviction ever runs (`Budget::Unbounded`, or a
    /// fixed/ratio cap at or above `prompt + max_new_tokens`).
    ///
    /// This is the soundness condition for the serving layer's
    /// shared-prefix admission discount: an eviction inside a shared
    /// prefix span privatizes it (the session then *owns* those bytes —
    /// see [`veda_model::LayerKvCache::seed_from`]), so only sessions
    /// that provably never evict can reserve less than their full peak.
    /// Note that [`Engine::tighten_budget`] (the opt-in lossy pressure
    /// response) can retroactively break this promise — which is why the
    /// bundled `veda-serving` server disables the discount entirely when
    /// budget shrinking is configured.
    pub fn never_evicts(&self) -> bool {
        self.budget.resolve(self.prompt.len()) >= self.peak_resident_tokens()
    }
}

/// Handle of one submitted request within an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Session(usize);

impl Session {
    /// The numeric session id (submission order).
    pub fn id(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Lifecycle phase of a session (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionPhase {
    /// The prompt is still being consumed; no output token yet.
    Prefilling,
    /// The prompt is consumed; each tick decodes one generated token.
    Decoding,
    /// The session retired; its report is available until taken.
    Finished,
}

impl std::fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionPhase::Prefilling => "prefilling",
            SessionPhase::Decoding => "decoding",
            SessionPhase::Finished => "finished",
        })
    }
}

/// Per-session outcome of one [`Engine::step`] tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenEvent {
    /// A decoding session emitted one generated token.
    Generated {
        /// The emitting session.
        session: Session,
        /// The generated token id.
        token: usize,
        /// Attention cycles of this token at the session's pre-step cache
        /// length (single-sequence cycle model).
        attention_cycles: u64,
        /// Evictions performed across all layers after appending this
        /// token.
        evictions: usize,
        /// The session's cache length after eviction.
        cache_len: usize,
        /// Whether this token finished the session (limit or stop token).
        finished: bool,
    },
    /// A prefilling session consumed a chunk of prompt tokens (no output
    /// token yet — its first [`TokenEvent::Generated`] comes the tick
    /// after the prompt is fully consumed).
    PrefillProgress {
        /// The prefilling session.
        session: Session,
        /// Prompt tokens consumed this tick.
        tokens: usize,
        /// Prompt tokens still unconsumed after this tick (`0` means
        /// prefill completed and the session enters the `Decoding`
        /// phase).
        remaining: usize,
        /// The session's cache length after the chunk (prefill never
        /// evicts).
        cache_len: usize,
        /// Whether this event retired the session — only possible when
        /// prefill completed and the request asked for zero generated
        /// tokens.
        finished: bool,
    },
}

impl TokenEvent {
    /// The session this event belongs to.
    pub fn session(&self) -> Session {
        match *self {
            TokenEvent::Generated { session, .. } | TokenEvent::PrefillProgress { session, .. } => session,
        }
    }

    /// Whether this event retired its session this tick.
    pub fn finished(&self) -> bool {
        match *self {
            TokenEvent::Generated { finished, .. } | TokenEvent::PrefillProgress { finished, .. } => finished,
        }
    }

    /// The generated token id, if this is a decode event.
    pub fn generated_token(&self) -> Option<usize> {
        match *self {
            TokenEvent::Generated { token, .. } => Some(token),
            TokenEvent::PrefillProgress { .. } => None,
        }
    }
}

/// Result of one [`Engine::step`] tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineTick {
    /// One event per session that advanced this tick, in session order
    /// (decode and prefill events interleaved by session).
    pub events: Vec<TokenEvent>,
    /// Number of sessions that advanced in this tick (decode steps plus
    /// prefill chunks; prefilling sessions starved by the tick token
    /// budget do not count).
    pub batch_size: usize,
    /// Generated tokens emitted this tick (decode events).
    pub decode_tokens: usize,
    /// Prompt tokens consumed by prefill chunks this tick.
    pub prefill_tokens: usize,
    /// Prefilling sessions that consumed a chunk this tick.
    pub prefill_sessions: usize,
    /// Critical-path cycles of the mixed tick
    /// ([`DecodeScheduler::mixed_batch`]).
    pub batch_cycles: u64,
    /// Energy of the batched tick in millijoules (core + HBM, weights
    /// streamed once).
    pub batch_energy_mj: f64,
    /// KV bytes resident in device memory after the tick (active sessions
    /// only — paused sessions are the serving layer's to account, finished
    /// sessions free their state before this is sampled).
    pub kv_bytes_resident: u64,
}

/// Outcome of one finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The session handle.
    pub session: Session,
    /// The policy the request ran with.
    pub policy: PolicyKind,
    /// The budget the request ran with.
    pub budget: Budget,
    /// Per-request report, identical to what the legacy one-shot
    /// [`crate::Simulation::run`] produces for the same prompt.
    pub report: SimulationReport,
}

/// Aggregated result of an engine run: per-request reports plus
/// batched-tick throughput/energy.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Finished requests in completion order.
    pub requests: Vec<RequestOutcome>,
    /// Batched (mixed prefill/decode) ticks executed.
    pub ticks: u64,
    /// Total tokens generated across all requests.
    pub total_tokens: usize,
    /// Prompt tokens consumed by on-clock chunked prefill across all
    /// ticks. Zero under instant prefill
    /// (`prefill_chunk = usize::MAX`), where prompts are consumed
    /// cost-free at [`Engine::submit`].
    pub prefill_tokens: usize,
    /// Sum of batched-tick critical-path cycles.
    pub batched_total_cycles: u64,
    /// Batched decode throughput at the architecture clock.
    pub batched_tokens_per_second: f64,
    /// Batched energy per generated token in millijoules.
    pub batched_energy_mj_per_token: f64,
    /// Sum of the per-request single-sequence cycle totals — what serving
    /// the same requests one at a time would have cost.
    pub sequential_total_cycles: u64,
    /// Largest batch observed in one tick.
    pub max_concurrency: usize,
    /// Shared-prefix cache counters at drain time (all-zero when the
    /// cache is disabled). Unlike the tick/token accumulators these are
    /// cumulative over the engine's lifetime — the cache itself persists
    /// across report drains.
    pub prefix: crate::prefix::PrefixCacheStats,
}

impl EngineReport {
    /// How much cheaper the batched schedule was than serving each request
    /// alone (`sequential / batched` cycles; 1.0 when nothing batched).
    pub fn batching_speedup(&self) -> f64 {
        if self.batched_total_cycles == 0 {
            1.0
        } else {
            self.sequential_total_cycles as f64 / self.batched_total_cycles as f64
        }
    }
}

impl std::fmt::Display for EngineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "engine report: {} requests, {} ticks, max concurrency {}",
            self.requests.len(),
            self.ticks,
            self.max_concurrency
        )?;
        writeln!(f, "  tokens generated       : {}", self.total_tokens)?;
        writeln!(f, "  prefill tokens on clock: {}", self.prefill_tokens)?;
        writeln!(f, "  batched cycles         : {}", self.batched_total_cycles)?;
        writeln!(f, "  batched tokens/s       : {:.1}", self.batched_tokens_per_second)?;
        writeln!(f, "  batched energy/token   : {:.3} mJ", self.batched_energy_mj_per_token)?;
        writeln!(f, "  sequential cycles      : {}", self.sequential_total_cycles)?;
        writeln!(f, "  batching speedup       : {:.2}x", self.batching_speedup())?;
        if self.prefix.hits + self.prefix.misses > 0 {
            writeln!(
                f,
                "  prefix cache           : {} hits / {} lookups ({:.0}%), {} prompt tokens shared, {} entries ({} B)",
                self.prefix.hits,
                self.prefix.hits + self.prefix.misses,
                100.0 * self.prefix.hit_rate(),
                self.prefix.shared_tokens,
                self.prefix.entries,
                self.prefix.resident_bytes,
            )?;
        }
        for r in &self.requests {
            let budget = match r.budget {
                Budget::Unbounded => "∞".to_string(),
                _ => r.report.cache_budget.to_string(),
            };
            writeln!(
                f,
                "  {:<4} {:<14} {:<12} {:>4} tokens  {:>8.1} tok/s  {:>8.3} mJ/tok  cache {} / budget {}",
                r.session.to_string(),
                r.policy.as_str(),
                r.budget.to_string(),
                r.report.generated.len(),
                r.report.tokens_per_second,
                r.report.energy_mj_per_token,
                r.report.final_cache_len,
                budget,
            )?;
        }
        Ok(())
    }
}

/// Builder for [`Engine`].
///
/// Defaults match the legacy [`crate::SimulationBuilder`]: tiny model,
/// VEDA architecture scaled to the model's head geometry,
/// `FlexibleElementSerial` dataflow, paper-default HBM.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    model: ModelConfig,
    variant: DataflowVariant,
    hbm: HbmConfig,
    decode_threads: usize,
    prefill_chunk: usize,
    tick_token_budget: usize,
    prefix_cache: Option<PrefixCacheConfig>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineBuilder {
    /// Creates a builder with defaults.
    pub fn new() -> Self {
        Self {
            model: ModelConfig::tiny(),
            variant: DataflowVariant::FlexibleElementSerial,
            hbm: HbmConfig::default(),
            decode_threads: 1,
            prefill_chunk: usize::MAX,
            tick_token_budget: usize::MAX,
            prefix_cache: None,
        }
    }

    /// Sets the functional model configuration.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the dataflow variant.
    pub fn variant(mut self, variant: DataflowVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the HBM configuration.
    pub fn hbm(mut self, hbm: HbmConfig) -> Self {
        self.hbm = hbm;
        self
    }

    /// Sets the number of decode worker threads [`Engine::step`] fans
    /// active sessions across. `1` (the default) keeps today's fully
    /// serial tick; values are clamped to at least one. The fan-out is
    /// order-preserving and touches only per-session state, so **any**
    /// thread count produces byte-identical token streams and reports —
    /// pinned by the integration tests.
    pub fn decode_threads(mut self, threads: usize) -> Self {
        self.decode_threads = threads.max(1);
        self
    }

    /// Sets how many prompt tokens one [`Engine::step`] tick may consume
    /// per prefilling session (Sarathi/vLLM-style chunked prefill).
    /// Values are clamped to at least one.
    ///
    /// The default, `usize::MAX`, selects **instant prefill**: the whole
    /// prompt is consumed synchronously (and cost-free) inside
    /// [`Engine::submit`], byte-identical to the pre-chunking engine. Any
    /// finite value makes prefill first-class scheduled work: `submit`
    /// only validates, reserves KV and enqueues the session in the
    /// [`SessionPhase::Prefilling`] phase, and `step` consumes the prompt
    /// in chunks on the clock, mixed into the decode batch. The generated
    /// token stream and eviction counts are identical for every chunk
    /// size — only the tick timeline changes — which the property tests
    /// pin down.
    pub fn prefill_chunk(mut self, tokens: usize) -> Self {
        self.prefill_chunk = tokens.max(1);
        self
    }

    /// Sets the per-tick token budget shared across phases: one
    /// [`Engine::step`] tick spends one budget token per decoding session
    /// and deals the remainder to prefilling sessions (in session order,
    /// up to [`EngineBuilder::prefill_chunk`] each). Decode is never
    /// throttled — a budget smaller than the decode batch only starves
    /// prefill for that tick. Values are clamped to at least one; the
    /// default `usize::MAX` leaves prefill bounded by the chunk size
    /// alone.
    pub fn tick_token_budget(mut self, tokens: usize) -> Self {
        self.tick_token_budget = tokens.max(1);
        self
    }

    /// Enables the shared-prefix KV cache (see [`crate::prefix`]):
    /// [`Engine::submit`] matches each request's prompt against cached
    /// prefix entries (token-exact longest match of at least
    /// [`PrefixCacheConfig::min_match_tokens`] tokens), and a hit seeds
    /// the session's KV state from the cached rows — only the unshared
    /// suffix is prefilled, the session's policy stack replays the cached
    /// observation stream, and the scheduler charges only the suffix's
    /// prefill work (attention still covers the full resident length via
    /// the chunk's `start_len`). Prompts that *miss* insert themselves as
    /// a new entry when their prefill completes, while room remains.
    ///
    /// Disabled by default — and **off means off**: the engine is
    /// byte-identical to one built without this call, which the
    /// equivalence tests pin. Enabled, the sharing changes only *where
    /// bytes live and when prefill work lands on the clock*, never which
    /// tokens a request generates — pinned by the
    /// `prefix_equivalence` property tests.
    pub fn prefix_cache(mut self, config: PrefixCacheConfig) -> Self {
        self.prefix_cache = Some(config);
        self
    }

    /// Builds the engine: allocates the shared weights, shapes the
    /// architecture to the model's attention geometry and derives the
    /// scheduler and energy model.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidModel`] / [`BuildError::InvalidArch`]
    /// when the configuration is inconsistent.
    pub fn build(self) -> Result<Engine, BuildError> {
        self.model.validate().map_err(BuildError::InvalidModel)?;

        // Architecture shaped to the model's attention geometry; everything
        // else stays at VEDA defaults.
        let mut arch = ArchConfig::veda();
        arch.head_dim = self.model.head_dim();
        arch.n_heads = self.model.n_heads;
        arch.validate().map_err(BuildError::InvalidArch)?;

        let shape = LlamaShape {
            d_model: self.model.d_model,
            n_heads: self.model.n_heads,
            ffn_hidden: self.model.ffn_hidden,
            n_layers: self.model.n_layers,
            vocab_size: self.model.vocab_size,
        };
        let scheduler = DecodeScheduler::new(arch.clone(), shape, self.hbm, self.variant);
        let energy = EnergyModel::for_arch(&arch);

        Ok(Engine {
            model: TransformerModel::new(self.model),
            arch,
            variant: self.variant,
            scheduler,
            energy,
            decode_threads: self.decode_threads.max(1),
            prefill_chunk: self.prefill_chunk.max(1),
            tick_token_budget: self.tick_token_budget.max(1),
            prefix_cache: self.prefix_cache.map(PrefixCache::new),
            prefix_transfers: Vec::new(),
            solo_cycles_by_len: BTreeMap::new(),
            active: Vec::new(),
            paused: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            ticks: 0,
            tokens_emitted: 0,
            prefill_tokens: 0,
            batched_cycles: 0,
            batched_energy_mj: 0.0,
            sequential_cycles: 0,
            max_concurrency: 0,
            tracer: None,
            next_trace_id: None,
        })
    }
}

/// State of one in-flight session. Everything a decode worker touches
/// during the fan-out lives here (or is a shared `&` borrow), so sessions
/// advance in parallel without synchronization.
struct ActiveSession {
    id: Session,
    policy_kind: PolicyKind,
    budget: Budget,
    resident_cap: usize,
    policies: Vec<Box<dyn EvictionPolicy>>,
    state: SequenceState,
    /// Reusable forward-pass buffers; after each step `scratch.logits()`
    /// holds the logits the *next* step decodes greedily from.
    scratch: ForwardScratch,
    /// Reusable per-layer eviction victim list (original slot indices).
    victims: Vec<usize>,
    /// The request's prompt; consumed by prefill (instantly at submit or
    /// chunk by chunk on the clock).
    prompt: Vec<usize>,
    /// Prompt tokens consumed so far; the session is `Prefilling` while
    /// this is short of the prompt length.
    prefilled: usize,
    /// When `Some`, this session records its prompt's per-token
    /// attention-score observations during prefill, to be inserted as a
    /// prefix-cache entry once the prompt completes. Only set for
    /// prompts that *missed* the cache at submit (hit prompts insert
    /// nothing), so the recorded stream always covers the whole prompt.
    prefix_obs: Option<Vec<ScoreBuffer>>,
    /// Id of the prefix-cache entry this session was seeded from, if
    /// any. The session holds a *seed pin* on that entry from submit to
    /// retirement (retire/discard/extract release it), so cache churn
    /// can never evict, spill or expire rows a live session references.
    seed_pin: Option<u64>,
    position: usize,
    max_new_tokens: usize,
    stop_tokens: Vec<usize>,
    generated: Vec<usize>,
    attention_cycles: Vec<u64>,
    total_cycles: u64,
    total_energy_mj: f64,
    evictions: usize,
    /// Request id stamped onto trace events. Defaults to the session id;
    /// serving layers override it with the global arrival index
    /// ([`Engine::set_next_trace_id`]) so one request keeps one id across
    /// shards, swaps, and migrations (the id travels with
    /// [`Engine::extract`]/[`Engine::adopt`]).
    trace_id: u64,
}

impl ActiveSession {
    /// Whether the prompt is fully consumed (the session decodes).
    fn is_decoding(&self) -> bool {
        self.prefilled == self.prompt.len()
    }

    /// The cache length the cycle model charges for the next decode step
    /// (mirrors the legacy `Simulation::run` clamping).
    fn costed_len(&self) -> usize {
        self.state.cache_len().min(self.resident_cap.max(1)).max(1)
    }
}

/// Consumes the next `tokens` prompt tokens of `session`: forward pass
/// per token, policies observe the attention scores, **no eviction**
/// (Fig. 3's reserved + voting stages). Shared by instant prefill at
/// [`Engine::submit`] and chunked prefill inside [`Engine::step`], so the
/// two paths are op-for-op identical.
fn run_prefill(model: &TransformerModel, session: &mut ActiveSession, tokens: usize) {
    for i in session.prefilled..session.prefilled + tokens {
        let token = session.prompt[i];
        let position = session.position;
        let ActiveSession { state, scratch, policies, .. } = session;
        model.forward_with_scratch(state, token, position, scratch);
        for (layer, policy) in policies.iter_mut().enumerate() {
            policy.on_append();
            policy.observe(scratch.scores().layer(layer));
        }
        if let Some(obs) = session.prefix_obs.as_mut() {
            // This prompt is a prefix-cache insertion candidate: record
            // the token's observation stream for later replay.
            obs.push(session.scratch.scores().clone());
        }
        session.position += 1;
    }
    session.prefilled += tokens;
}

/// Replays a prefix-cache hit into a freshly built session: the first
/// `matched` recorded observation streams are fed to the policy stack in
/// exactly the order [`run_prefill`] would have produced them — per token,
/// every layer appends then observes — so the policies' internal state
/// (H2O score sums, vote counts, windows) is bit-identical to having run
/// the shared span's forward passes, which were skipped.
fn replay_observations(session: &mut ActiveSession, observations: &[ScoreBuffer], matched: usize) {
    for step in &observations[..matched] {
        for (layer, policy) in session.policies.iter_mut().enumerate() {
            policy.on_append();
            policy.observe(step.layer(layer));
        }
        session.position += 1;
    }
    session.prefilled += matched;
}

/// Per-session work of one tick, resolved on the coordinator before any
/// fan-out so workers touch only their own session.
#[derive(Debug, Clone, Copy)]
enum Plan {
    /// Advance one generated token (pre-resolved cost inputs).
    Decode { l_before: usize, solo_cycles: u64 },
    /// Consume `tokens` prompt tokens.
    Prefill { tokens: usize },
    /// No work this tick (the tick token budget starved this prefilling
    /// session).
    Wait,
}

/// Shared read-only context of one decode tick, borrowed by every worker
/// during the fan-out. Everything here is `&`-shared (`TransformerModel`
/// is `Sync`; the cycle and energy models are pure); all mutation happens
/// inside each worker's own [`ActiveSession`].
struct StepContext<'a> {
    model: &'a TransformerModel,
    arch: &'a ArchConfig,
    energy: &'a EnergyModel,
    variant: DataflowVariant,
    shape: LlamaShape,
}

impl StepContext<'_> {
    /// Executes one session's tick plan, returning its event (`None` for
    /// [`Plan::Wait`]).
    fn execute(&self, session: &mut ActiveSession, plan: Plan) -> Option<TokenEvent> {
        match plan {
            Plan::Wait => None,
            Plan::Decode { l_before, solo_cycles } => Some(self.advance(session, l_before, solo_cycles)),
            Plan::Prefill { tokens } => Some(self.prefill(session, tokens)),
        }
    }

    /// Consumes one prefill chunk (observe-only forward passes — see
    /// [`run_prefill`]) and reports the session's prefill progress.
    fn prefill(&self, session: &mut ActiveSession, tokens: usize) -> TokenEvent {
        run_prefill(self.model, session, tokens);
        let remaining = session.prompt.len() - session.prefilled;
        TokenEvent::PrefillProgress {
            session: session.id,
            tokens,
            remaining,
            cache_len: session.state.cache_len(),
            finished: remaining == 0 && session.max_new_tokens == 0,
        }
    }

    /// Advances one session by one token: greedy argmax over the previous
    /// step's logits, single-sequence cost accounting (from the
    /// pre-resolved `solo_cycles`), forward pass through the session's
    /// scratch, then per-layer observe + evict down to the budget.
    fn advance(&self, session: &mut ActiveSession, l_before: usize, solo_cycles: u64) -> TokenEvent {
        // Greedy next token from the logits of the previous step.
        let token = veda_tensor::stats::argmax(session.scratch.logits()).expect("non-empty logits");
        session.generated.push(token);

        let attention_cycles = decode_attention_cycles(self.arch, self.variant, l_before);
        session.attention_cycles.push(attention_cycles);
        session.total_cycles += solo_cycles;
        let solo_bytes = self.shape.weight_bytes_per_token() + self.shape.kv_bytes_per_token(l_before);
        session.total_energy_mj += self.energy.token_energy_mj(solo_cycles, solo_bytes);

        // Feed the token through the model; policies observe the flat
        // score views and evict down to the session's budget.
        let position = session.position;
        let resident_cap = session.resident_cap;
        let ActiveSession { state, scratch, policies, victims, .. } = session;
        self.model.forward_with_scratch(state, token, position, scratch);
        let mut evictions = 0;
        for (layer, policy) in policies.iter_mut().enumerate() {
            policy.on_append();
            policy.observe(scratch.scores().layer(layer));

            // Victims are selected one at a time (each selection sees the
            // policy's compacted state, exactly as the serial protocol
            // demands) but the KV rows are removed in a single stable
            // compaction pass per layer. `victims` collects the selected
            // slots mapped back to the original pre-eviction index space,
            // kept sorted ascending.
            victims.clear();
            let mut len = state.caches()[layer].len();
            while len > resident_cap {
                let Some(slot) = policy.select_victim(len) else {
                    break;
                };
                policy.on_evict(slot);
                let mut original = slot;
                let mut insert_at = 0;
                for &prior in victims.iter() {
                    if prior <= original {
                        original += 1;
                        insert_at += 1;
                    } else {
                        break;
                    }
                }
                victims.insert(insert_at, original);
                len -= 1;
                evictions += 1;
            }
            state.evict_many(layer, victims);
        }
        session.position += 1;
        session.evictions += evictions;

        let finished =
            session.generated.len() >= session.max_new_tokens || session.stop_tokens.contains(&token);
        TokenEvent::Generated {
            session: session.id,
            token,
            attention_cycles,
            evictions,
            cache_len: session.state.cache_len(),
            finished,
        }
    }
}

/// A paused session lifted out of one [`Engine`] for adoption by another
/// ([`Engine::extract`] / [`Engine::adopt`]) — the unit of cross-shard
/// session migration. The wrapper is opaque: it carries the session's
/// complete decode state (KV cache, logits scratch, per-layer eviction
/// policies, prompt/generation progress and per-request accounting), so
/// the adopting engine continues the token stream bit-identically to an
/// unmigrated run. The KV payload a migration must move over the
/// interconnect is [`MigratedSession::kv_bytes`].
pub struct MigratedSession {
    inner: ActiveSession,
    /// Geometry of the source engine's model — adoption requires an
    /// identical configuration (same synthetic weights).
    config: ModelConfig,
}

impl MigratedSession {
    /// KV bytes (FP16) the session owns — the payload a migration moves
    /// over the interconnect, in each direction. Extraction privatizes
    /// any shared prefix span first, so this covers every resident row.
    pub fn kv_bytes(&self) -> u64 {
        self.inner.state.fp16_bytes() as u64
    }

    /// Tokens the session has generated so far.
    pub fn generated_tokens(&self) -> usize {
        self.inner.generated.len()
    }

    /// The source engine's model geometry (what [`Engine::adopt`] checks).
    pub fn model_config(&self) -> &ModelConfig {
        &self.config
    }
}

impl std::fmt::Debug for MigratedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigratedSession")
            .field("source_session", &self.inner.id)
            .field("kv_bytes", &self.kv_bytes())
            .field("generated_tokens", &self.inner.generated.len())
            .finish()
    }
}

/// The long-lived serving engine (see the [module docs](self)).
pub struct Engine {
    model: TransformerModel,
    arch: ArchConfig,
    variant: DataflowVariant,
    scheduler: DecodeScheduler,
    energy: EnergyModel,
    /// Worker threads one [`Engine::step`] fans sessions across (≥ 1).
    decode_threads: usize,
    /// Prompt tokens one tick may consume per prefilling session
    /// (`usize::MAX` = instant prefill at submit).
    prefill_chunk: usize,
    /// Per-tick token budget shared across phases (≥ 1).
    tick_token_budget: usize,
    /// Shared-prefix KV cache (`None` = disabled, the default — the
    /// disabled engine is byte-identical to the pre-prefix-cache engine).
    prefix_cache: Option<PrefixCache>,
    /// Host-link traffic produced by prefix-cache churn (spills from
    /// eviction, fills from host-tier promotion), in the deterministic
    /// order it happened. Serving layers drain it via
    /// [`Engine::take_prefix_transfers`] to charge their host link; a
    /// standalone engine just accumulates the record.
    prefix_transfers: Vec<PrefixTransfer>,
    /// Cross-tick memo of single-sequence decode cost per cache length,
    /// resolved on the coordinator before any fan-out (capped sessions
    /// share a handful of lengths in steady state). Ordered so iteration
    /// (should any future reader walk it) can never depend on hash seed.
    solo_cycles_by_len: BTreeMap<usize, u64>,
    active: Vec<ActiveSession>,
    paused: Vec<ActiveSession>,
    finished: Vec<RequestOutcome>,
    next_id: usize,
    ticks: u64,
    tokens_emitted: usize,
    prefill_tokens: usize,
    batched_cycles: u64,
    batched_energy_mj: f64,
    sequential_cycles: u64,
    max_concurrency: usize,
    /// Observation-only trace emitter (`None` = zero-cost, byte-identical
    /// to an engine without the telemetry plane). All emission happens on
    /// the coordinator thread, never inside the decode fan-out, so the
    /// event stream is deterministic for any thread count.
    tracer: Option<Tracer>,
    /// Trace id consumed by the next [`Engine::submit`] (set by serving
    /// layers just before submitting; see [`ActiveSession::trace_id`]).
    next_trace_id: Option<u64>,
}

impl Engine {
    /// The configured architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The dataflow variant.
    pub fn variant(&self) -> DataflowVariant {
        self.variant
    }

    /// The shared model configuration.
    pub fn model_config(&self) -> &ModelConfig {
        self.model.config()
    }

    /// Decode worker threads per tick (see
    /// [`EngineBuilder::decode_threads`]).
    pub fn decode_threads(&self) -> usize {
        self.decode_threads
    }

    /// Prompt tokens one tick may consume per prefilling session —
    /// `usize::MAX` means instant prefill at submit (see
    /// [`EngineBuilder::prefill_chunk`]).
    pub fn prefill_chunk(&self) -> usize {
        self.prefill_chunk
    }

    /// Per-tick token budget shared across phases (see
    /// [`EngineBuilder::tick_token_budget`]).
    pub fn tick_token_budget(&self) -> usize {
        self.tick_token_budget
    }

    /// The lifecycle phase of `session`: `Prefilling`/`Decoding` for
    /// in-flight sessions (active or paused), `Finished` once its report
    /// is available, `None` for unknown sessions (or after the report was
    /// taken).
    pub fn session_phase(&self, session: Session) -> Option<SessionPhase> {
        if let Some(s) = self.active.iter().chain(&self.paused).find(|s| s.id == session) {
            Some(if s.is_decoding() { SessionPhase::Decoding } else { SessionPhase::Prefilling })
        } else if self.is_finished(session) {
            Some(SessionPhase::Finished)
        } else {
            None
        }
    }

    /// Number of sessions currently decoding.
    pub fn active_sessions(&self) -> usize {
        self.active.len()
    }

    /// Whether `session` is still decoding.
    pub fn is_active(&self, session: Session) -> bool {
        self.active.iter().any(|s| s.id == session)
    }

    /// Number of sessions currently paused.
    pub fn paused_sessions(&self) -> usize {
        self.paused.len()
    }

    /// Whether `session` is paused.
    pub fn is_paused(&self, session: Session) -> bool {
        self.paused.iter().any(|s| s.id == session)
    }

    /// KV bytes (FP16) resident in device memory across all *active*
    /// sessions. Paused sessions are excluded: the serving layer that
    /// paused them decides whether their KV state stays resident or is
    /// swapped to the host. Shared prefix spans are also excluded — those
    /// bytes are resident **once**, inside their prefix-cache entry
    /// ([`Engine::prefix_cache_bytes`]), no matter how many sessions
    /// reference them.
    pub fn kv_bytes_active(&self) -> u64 {
        self.active.iter().map(|s| s.state.fp16_bytes() as u64).sum()
    }

    /// KV bytes (FP16) of one in-flight session, active or paused.
    pub fn session_kv_bytes(&self, session: Session) -> Option<u64> {
        self.active.iter().chain(&self.paused).find(|s| s.id == session).map(|s| s.state.fp16_bytes() as u64)
    }

    /// Tokens `session` may still generate before hitting its limit
    /// (ignores stop tokens, which can end it earlier). Scheduling
    /// policies use this for shortest-remaining-budget ordering.
    pub fn session_remaining_tokens(&self, session: Session) -> Option<usize> {
        self.active
            .iter()
            .chain(&self.paused)
            .find(|s| s.id == session)
            .map(|s| s.max_new_tokens.saturating_sub(s.generated.len()))
    }

    /// KV bytes (FP16) one resident token occupies across all layers —
    /// the unit admission controllers multiply resident-token estimates
    /// by. Consistent with [`veda_model::SequenceState::fp16_bytes`].
    pub fn kv_bytes_per_token(&self) -> u64 {
        let cfg = self.model.config();
        // K and V rows of d_model FP16 values per layer.
        (cfg.n_layers as u64) * 2 * (cfg.d_model as u64) * 2
    }

    /// Whether the shared-prefix KV cache is enabled (see
    /// [`EngineBuilder::prefix_cache`]).
    pub fn prefix_cache_enabled(&self) -> bool {
        self.prefix_cache.is_some()
    }

    /// Prompt tokens a [`Engine::submit`] of this prompt would currently
    /// serve from the prefix cache (token-exact longest match, capped one
    /// short of the prompt, zero when disabled or below the minimum).
    ///
    /// Serving layers use this as a *probe*: under the v2 churn-capable
    /// cache, an unpinned entry can be evicted, spilled or TTL-expired
    /// between the probe and the eventual [`Engine::submit`], so the
    /// match can shrink. A serving layer that reserves only the
    /// **unshared** peak KV bytes of a known-prefix request must take a
    /// [`Engine::pin_prefix`] pin on the matched entry and hold it until
    /// the submit lands — the pin makes the entry ineligible for every
    /// churn path, restoring the "match can only grow" guarantee the
    /// admission discount depends on.
    pub fn prefix_match_len(&self, prompt: &[usize]) -> usize {
        self.prefix_cache.as_ref().map_or(0, |cache| cache.match_len(prompt))
    }

    /// Pins the prefix-cache entry that best matches `prompt` (the same
    /// entry a [`Engine::submit`] would seed from right now) and returns
    /// a [`PrefixPin`] receipt, or `None` when the cache is disabled or
    /// nothing matches at or above the minimum. A pinned entry is immune
    /// to LRU eviction, host spill and TTL expiry until every pin is
    /// released via [`Engine::unpin_prefix`].
    ///
    /// This is the admission-side half of the discount-soundness
    /// contract (see [`Engine::prefix_match_len`]): pin at accept, hold
    /// across the queue, release once the submit has taken its own seed
    /// pin. Pinning is accounting-neutral — it records neither a hit nor
    /// a miss and never promotes a host-tier entry.
    pub fn pin_prefix(&mut self, prompt: &[usize]) -> Option<PrefixPin> {
        self.prefix_cache.as_mut().and_then(|cache| cache.pin(prompt))
    }

    /// Releases a pin taken with [`Engine::pin_prefix`]. The entry's LRU
    /// clock is touched on release, so a just-unpinned entry is the
    /// *freshest* eviction candidate, not the staleest.
    pub fn unpin_prefix(&mut self, pin: PrefixPin) {
        if let Some(cache) = self.prefix_cache.as_mut() {
            cache.unpin(pin);
        }
    }

    /// Host-link bytes a [`Engine::submit`] of this prompt would have to
    /// fill back from the host spill tier before seeding — the size of
    /// the best-matching entry when it currently lives on the host, zero
    /// when it is device-resident, nothing matches, or the cache is
    /// disabled. Admission controllers add this to a request's headroom
    /// check so a discounted accept cannot be bankrupted by its own fill
    /// traffic.
    pub fn prefix_fill_bytes(&self, prompt: &[usize]) -> u64 {
        self.prefix_cache.as_ref().map_or(0, |cache| cache.fill_bytes(prompt))
    }

    /// Advances the prefix cache's TTL clock to `now` (ticks, monotone —
    /// stale values are ignored) and expires idle unpinned entries on
    /// both tiers. Each expiry is traced as
    /// [`TraceEventKind::PrefixExpired`] with the cache entry id in the
    /// event's request field. No-op when the cache is disabled or
    /// [`PrefixCacheConfig::ttl_ticks`] is `u64::MAX`.
    ///
    /// Serving layers call this once per tick *before* admission, so a
    /// tick's accepts see post-expiry cache contents.
    pub fn advance_prefix_clock(&mut self, now: u64) {
        let Some(cache) = self.prefix_cache.as_mut() else { return };
        let expiries = cache.advance_clock(now);
        for expiry in expiries {
            self.trace(expiry.entry, TraceEventKind::PrefixExpired { bytes: expiry.bytes });
        }
    }

    /// Drains the spill/fill transfers the prefix cache generated since
    /// the last call (submit-time promotions, capacity-pressure spills).
    /// Serving layers charge each one to their host link — tagged
    /// [`PrefixTransferKind::Spill`] traffic leaves the device
    /// asynchronously, while `Fill` traffic must be serialized onto the
    /// engine clock like a session swap-in before the hitting session
    /// decodes. Standalone engine users may ignore the outbox; it grows
    /// by one record per spill/fill until drained.
    pub fn take_prefix_transfers(&mut self) -> Vec<PrefixTransfer> {
        std::mem::take(&mut self.prefix_transfers)
    }

    /// FP16 bytes the prefix cache's spilled entries occupy in host
    /// memory (zero when spill is disabled). Counterpart of
    /// [`Engine::prefix_cache_bytes`], which counts the device tier.
    pub fn prefix_host_bytes(&self) -> u64 {
        self.prefix_cache.as_ref().map_or(0, PrefixCache::host_bytes)
    }

    /// Aggregate prefix-cache counters (all-zero when disabled). Also
    /// reported on [`EngineReport::prefix`].
    pub fn prefix_cache_stats(&self) -> PrefixCacheStats {
        self.prefix_cache.as_ref().map_or_else(PrefixCacheStats::default, PrefixCache::stats)
    }

    /// FP16 bytes the cached prefix entries keep resident in HBM —
    /// counted **once**, independently of how many sessions reference
    /// them. Not included in [`Engine::kv_bytes_active`], which accounts
    /// only the bytes sessions privately own.
    pub fn prefix_cache_bytes(&self) -> u64 {
        self.prefix_cache.as_ref().map_or(0, PrefixCache::resident_bytes)
    }

    /// Pauses an active session: it keeps its KV state, logits and policy
    /// stack but stops advancing in [`Engine::step`] until
    /// [`Engine::resume`]d. Returns the session's resident KV bytes (what
    /// a preempting scheduler must move over the host link to actually
    /// free device memory), or `None` if the session is not active.
    ///
    /// Pausing never changes the session's generated token sequence: each
    /// session decodes greedily from its own logits against its own
    /// state, so a pause only delays its remaining tokens.
    pub fn pause(&mut self, session: Session) -> Option<u64> {
        let idx = self.active.iter().position(|s| s.id == session)?;
        let s = self.active.remove(idx);
        let bytes = s.state.fp16_bytes() as u64;
        self.trace(s.trace_id, TraceEventKind::Paused);
        self.paused.push(s);
        Some(bytes)
    }

    /// Resumes a paused session into the active batch (it rejoins at the
    /// end of the round-robin order). Returns its resident KV bytes (the
    /// swap-in volume if it had been swapped out), or `None` if the
    /// session is not paused.
    pub fn resume(&mut self, session: Session) -> Option<u64> {
        let idx = self.paused.iter().position(|s| s.id == session)?;
        let s = self.paused.remove(idx);
        let bytes = s.state.fp16_bytes() as u64;
        self.trace(s.trace_id, TraceEventKind::Resumed);
        self.active.push(s);
        Some(bytes)
    }

    /// Discards an in-flight session — active or paused — without
    /// producing a finished report: its KV state is dropped (device
    /// memory freed), its partial token stream is lost, and it never
    /// appears in [`Engine::drain_report`]. Returns the KV bytes freed,
    /// or `None` if the session is not in flight.
    ///
    /// This is the fail-stop primitive of the serving fault plane: a
    /// crashed shard's sessions are discarded (their requests re-enter
    /// admission from the prompt), and a timed-out session is discarded
    /// before its request retries or dead-letters. The engine's prefix
    /// cache is untouched — cache entries own their bytes independently
    /// of the sessions referencing them, which is exactly what makes
    /// re-prefilling a recovered request cheap.
    pub fn discard(&mut self, session: Session) -> Option<u64> {
        let mut s = if let Some(idx) = self.active.iter().position(|s| s.id == session) {
            self.active.remove(idx)
        } else {
            let idx = self.paused.iter().position(|s| s.id == session)?;
            self.paused.remove(idx)
        };
        self.release_seed_pin(&mut s);
        Some(s.state.fp16_bytes() as u64)
    }

    /// Lifts a *paused* session out of this engine for adoption by
    /// another ([`Engine::adopt`]) — the engine half of cross-shard
    /// session migration. Returns `None` if the session is not paused
    /// (callers [`Engine::pause`] first; extraction of a mid-batch
    /// session would tear a tick in half).
    ///
    /// Any shared prefix span is privatized on the way out
    /// (`clear_shared_marker`): the rows were copied out of the cache
    /// entry when the session was seeded, so after extraction the
    /// session owns every resident byte and references nothing in this
    /// engine's prefix cache — [`MigratedSession::kv_bytes`] is then the
    /// complete interconnect payload. Like [`Engine::pause`], extraction
    /// never changes the session's remaining token stream.
    ///
    /// The extracted session's per-request cycle/energy accounting
    /// travels with it: when it finishes on the adopting engine, its
    /// `total_cycles` accrue to *that* engine's sequential-cycles
    /// aggregate.
    pub fn extract(&mut self, session: Session) -> Option<MigratedSession> {
        let idx = self.paused.iter().position(|s| s.id == session)?;
        let mut s = self.paused.remove(idx);
        s.state.clear_shared_marker();
        // Privatization severs the last reference into this engine's
        // prefix cache, so the seed pin is released here rather than
        // travelling with the session.
        self.release_seed_pin(&mut s);
        self.trace(s.trace_id, TraceEventKind::Extracted);
        Some(MigratedSession { inner: s, config: self.model.config().clone() })
    }

    /// Adopts a session extracted from another engine
    /// ([`Engine::extract`]). The session lands in this engine's *paused*
    /// set under a freshly allocated [`Session`] id (per-engine ids are
    /// not unique across a cluster) — [`Engine::resume`] releases it into
    /// the batch, which lets a serving layer serialize the interconnect
    /// transfer latency into its clock first.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidRequest`] if this engine's model
    /// geometry differs from the source's — migrating a session between
    /// different models would decode against different weights.
    pub fn adopt(&mut self, migrated: MigratedSession) -> Result<Session, BuildError> {
        if *self.model.config() != migrated.config {
            return Err(BuildError::InvalidRequest(
                "adopt requires the source engine's model geometry".into(),
            ));
        }
        let mut s = migrated.inner;
        s.id = Session(self.next_id);
        self.next_id += 1;
        // Extraction released the source-engine seed pin; an adopted
        // session must not carry a dangling pin id into this cache.
        s.seed_pin = None;
        if self.prefix_cache.is_none() {
            // The source engine promised a prefix-cache insertion this
            // engine cannot honor; dropping the recorded observations
            // changes nothing downstream (insertion only serves *future*
            // prompts).
            s.prefix_obs = None;
        }
        let id = s.id;
        self.trace(s.trace_id, TraceEventKind::Adopted);
        self.paused.push(s);
        Ok(id)
    }

    /// Shrinks the resident-token cap of an in-flight session (active or
    /// paused) to `min(current cap, max(1, new_cap))` — budget shrink
    /// under memory pressure. The next tick the session decodes, its
    /// policies evict down to the new cap. Returns the effective cap, or
    /// `None` if the session is not in flight.
    ///
    /// Unlike [`Engine::pause`], tightening a budget *does* change the
    /// session's subsequent token stream (evicting cache entries changes
    /// attention), so serving layers expose it as a distinct, opt-in
    /// pressure response.
    pub fn tighten_budget(&mut self, session: Session, new_cap: usize) -> Option<usize> {
        let s = self.active.iter_mut().chain(&mut self.paused).find(|s| s.id == session)?;
        s.resident_cap = s.resident_cap.min(new_cap.max(1));
        Some(s.resident_cap)
    }

    /// Installs an observation-only trace emitter. Every lifecycle event
    /// the engine produces from here on — prefill chunks, first tokens,
    /// decode ticks, pause/resume, extract/adopt, finishes — flows into
    /// the tracer's sink, stamped with the engine cycle clock and the
    /// tick set via [`Engine::set_trace_now`]. With no tracer installed
    /// the engine's behavior and outputs are byte-identical to a build
    /// without the telemetry plane (determinism invariant #8).
    pub fn install_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Updates the virtual tick stamped onto subsequent trace events.
    /// Serving layers call this once per clock tick; a no-op without a
    /// tracer.
    pub fn set_trace_now(&mut self, now: u64) {
        if let Some(t) = self.tracer.as_mut() {
            t.set_now(now);
        }
    }

    /// Sets the request id the next [`Engine::submit`] stamps onto its
    /// session's trace events (consumed by that one submit). Without
    /// this, events carry the engine-local session id.
    pub fn set_next_trace_id(&mut self, id: u64) {
        self.next_trace_id = Some(id);
    }

    /// Emit `kind` for `trace_id` at the current cycle clock (no-op
    /// without a tracer).
    fn trace(&self, trace_id: u64, kind: TraceEventKind) {
        if let Some(t) = &self.tracer {
            t.emit(self.batched_cycles, trace_id, kind);
        }
    }

    /// Whether `session` has finished (report available).
    pub fn is_finished(&self, session: Session) -> bool {
        self.finished.iter().any(|r| r.session == session)
    }

    /// The finished report of `session`, if any.
    pub fn report(&self, session: Session) -> Option<&SimulationReport> {
        self.finished.iter().find(|r| r.session == session).map(|r| &r.report)
    }

    /// Removes and returns the finished report of `session`.
    pub fn take_report(&mut self, session: Session) -> Option<SimulationReport> {
        let idx = self.finished.iter().position(|r| r.session == session)?;
        Some(self.finished.remove(idx).report)
    }

    /// Admits a request: validates it, reserves its KV storage
    /// ([`Request::reserve_resident_tokens`]) and enqueues the session in
    /// the [`SessionPhase::Prefilling`] phase. With the default instant
    /// prefill (`prefill_chunk = usize::MAX`) the whole prompt is
    /// additionally consumed here, synchronously and off the clock —
    /// byte-identical to the pre-chunking engine — and the session
    /// returns already `Decoding`; with a finite chunk the prompt is
    /// consumed by subsequent [`Engine::step`] ticks. Prefill observes
    /// attention scores but never evicts (Fig. 3's reserved + voting
    /// stages) on either path.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidRequest`] for an empty or
    /// out-of-vocabulary prompt and [`BuildError::InvalidBudget`] for an
    /// unusable budget.
    pub fn submit(&mut self, request: Request) -> Result<Session, BuildError> {
        if request.prompt.is_empty() {
            return Err(BuildError::InvalidRequest("prompt must be non-empty".into()));
        }
        let vocab = self.model.config().vocab_size;
        if let Some(&bad) = request.prompt.iter().find(|&&t| t >= vocab) {
            return Err(BuildError::InvalidRequest(format!(
                "prompt token {bad} outside vocabulary of {vocab}"
            )));
        }
        request.budget.validate()?;
        let resident_cap = request.budget.resolve(request.prompt.len());

        // Reserving the session's peak KV rows up front means neither
        // prefill nor steady-state decode reallocates KV storage.
        let reserve_tokens = request.reserve_resident_tokens();

        let mut session = ActiveSession {
            id: Session(self.next_id),
            policy_kind: request.policy,
            budget: request.budget,
            resident_cap,
            policies: (0..self.model.config().n_layers).map(|_| request.policy.build()).collect(),
            state: self.model.new_state(),
            scratch: self.model.new_scratch(reserve_tokens),
            victims: Vec::new(),
            prompt: request.prompt,
            prefilled: 0,
            prefix_obs: None,
            seed_pin: None,
            position: 0,
            max_new_tokens: request.max_new_tokens,
            stop_tokens: request.stop_tokens,
            generated: Vec::new(),
            attention_cycles: Vec::new(),
            total_cycles: 0,
            total_energy_mj: 0.0,
            evictions: 0,
            trace_id: self.next_trace_id.take().unwrap_or(self.next_id as u64),
        };
        session.state.reserve(reserve_tokens, self.model.config().d_model);
        self.next_id += 1;
        let id = session.id;

        // Shared-prefix reuse: a token-exact match against the prefix
        // cache seeds the session's KV state from the cached rows (a
        // shared span — resident once, copy-on-evict) and replays the
        // cached observation stream into the fresh policy stack, so the
        // shared span's forward passes are skipped without changing a
        // single downstream token. Only the unshared suffix goes through
        // (instant or chunked) prefill below. Only prompts that *miss*
        // become insertion candidates: a hit prompt's shareable span is
        // already cached, and storing its private suffix too would bloat
        // the cache with rows no future prompt can match.
        let projected_entry_bytes = session.prompt.len() as u64 * self.kv_bytes_per_token();
        if let Some(cache) = self.prefix_cache.as_mut() {
            if let Some(hit) = cache.lookup(&session.prompt) {
                session.state.seed_from(hit.state, hit.matched);
                let matched = hit.matched;
                let observations = hit.observations;
                // The lookup took the entry's seed pin; the session holds
                // it until retirement so churn can never invalidate the
                // shared span it references.
                session.seed_pin = Some(hit.entry);
                replay_observations(&mut session, observations, matched);
            } else if cache.wants(&session.prompt, projected_entry_bytes) {
                session.prefix_obs = Some(Vec::with_capacity(session.prompt.len()));
            }
        }
        // A host-tier hit above promoted its entry (and may have spilled
        // colder ones to make room): surface that traffic now, stamped
        // with this session's trace id.
        self.drain_prefix_traffic(session.trace_id);

        if self.prefill_chunk == usize::MAX {
            // Instant prefill: consume the whole prompt now, off the
            // clock (the pre-chunking compatibility path).
            let tokens = session.prompt.len() - session.prefilled;
            run_prefill(&self.model, &mut session, tokens);
            self.harvest_prefix(&mut session);
            if tokens > 0 {
                self.trace(
                    session.trace_id,
                    TraceEventKind::PrefillChunk { tokens: tokens as u32, remaining: 0 },
                );
            }
            if session.max_new_tokens == 0 {
                self.retire(session);
                return Ok(id);
            }
        }
        self.active.push(session);
        Ok(id)
    }

    /// Inserts a session's completed prompt into the prefix cache, if the
    /// session was recording for insertion (it missed the cache at submit
    /// — see [`Engine::submit`]). Called on the coordinator the moment
    /// prefill completes: the state holds exactly the prompt's KV rows
    /// (prefill never evicts) and the recorded observation stream covers
    /// every prompt token.
    fn harvest_prefix(&mut self, session: &mut ActiveSession) {
        debug_assert_eq!(session.prefilled, session.prompt.len());
        let Some(observations) = session.prefix_obs.take() else { return };
        let cache = self.prefix_cache.as_mut().expect("recording implies an enabled cache");
        // The entry owns its bytes outright: snapshot the state (a cold
        // session has no shared span, but clearing the marker keeps the
        // residency-root invariant unconditional).
        let mut state = self.model.new_state();
        state.seed_from(&session.state, session.prompt.len());
        state.clear_shared_marker();
        cache.insert(session.prompt.clone(), state, observations);
        // The insertion may have spilled (or dropped) cold entries to
        // make byte room: surface that traffic, attributed to the
        // inserting session.
        self.drain_prefix_traffic(session.trace_id);
    }

    /// Moves the cache's pending spill/fill transfers into the engine's
    /// outbox ([`Engine::take_prefix_transfers`]), emitting one trace
    /// event per transfer stamped with `trace_id` (the session whose
    /// submit or prefill completion triggered the churn). Runs on the
    /// coordinator only — submit, the post-fan-out drain and the clock
    /// advance are all coordinator-side.
    fn drain_prefix_traffic(&mut self, trace_id: u64) {
        let Some(cache) = self.prefix_cache.as_mut() else { return };
        let transfers = cache.take_transfers();
        if transfers.is_empty() {
            return;
        }
        for t in &transfers {
            let kind = match t.kind {
                PrefixTransferKind::Spill => TraceEventKind::PrefixSpill { bytes: t.bytes },
                PrefixTransferKind::Fill => TraceEventKind::PrefixFill { bytes: t.bytes },
            };
            self.trace(trace_id, kind);
        }
        self.prefix_transfers.extend(transfers);
    }

    /// Executes one *mixed* tick: every decoding session advances by one
    /// token and every prefilling session consumes up to
    /// [`EngineBuilder::prefill_chunk`] prompt tokens (within the shared
    /// [`EngineBuilder::tick_token_budget`]), all costed as one batch
    /// through [`DecodeScheduler::mixed_batch`] — weights stream from HBM
    /// once per tick across both phases. Returns the per-session
    /// [`TokenEvent`]s plus the tick's batched cost. A no-op returning an
    /// empty tick when nothing is active.
    ///
    /// With [`EngineBuilder::decode_threads`] > 1 the per-session work
    /// (greedy argmax → forward pass → observe/evict for decode; the
    /// observe-only chunk forward passes for prefill) fans out across a
    /// `std::thread::scope` of workers. All shared accounting — the
    /// per-session tick plan, the mixed-batch cost and the per-length
    /// solo-cost memo — is resolved on the coordinator *before* the
    /// fan-out, so workers touch only their own session and the token
    /// streams are byte-identical to the serial schedule for any thread
    /// count.
    pub fn step(&mut self) -> EngineTick {
        if self.active.is_empty() {
            return EngineTick::default();
        }

        // Resolve the tick plan on the coordinator. Decode sessions
        // advance one token each and are never throttled; the remaining
        // tick token budget is dealt to prefilling sessions in session
        // order, up to `prefill_chunk` each. Per-request accounting stays
        // single-sequence so the report is identical to a lone
        // `Simulation::run` of the same request; capped sessions share a
        // handful of cache lengths in steady state, so the solo cost is
        // memoized per length across ticks.
        let decode_count = self.active.iter().filter(|s| s.is_decoding()).count();
        let mut prefill_budget = self.tick_token_budget.saturating_sub(decode_count);
        let mut decode_lens: Vec<usize> = Vec::with_capacity(decode_count);
        let mut chunks: Vec<PrefillChunk> = Vec::new();
        let mut plans: Vec<Plan> = Vec::with_capacity(self.active.len());
        for session in &self.active {
            if session.is_decoding() {
                let l = session.costed_len();
                decode_lens.push(l);
                let scheduler = &self.scheduler;
                let solo_cycles = *self
                    .solo_cycles_by_len
                    .entry(l)
                    .or_insert_with(|| scheduler.decode_token(l).total_cycles);
                plans.push(Plan::Decode { l_before: l, solo_cycles });
            } else {
                let remaining = session.prompt.len() - session.prefilled;
                let take = remaining.min(self.prefill_chunk).min(prefill_budget);
                if take == 0 {
                    plans.push(Plan::Wait);
                } else {
                    prefill_budget -= take;
                    chunks.push(PrefillChunk {
                        start_len: session.state.cache_len(),
                        tokens: take,
                        completes_prompt: take == remaining,
                    });
                    plans.push(Plan::Prefill { tokens: take });
                }
            }
        }
        debug_assert!(
            decode_count > 0 || chunks.iter().map(|c| c.tokens).sum::<usize>() > 0,
            "a non-empty tick must make progress (budget and chunk are clamped to >= 1)"
        );

        // Cost the mixed batch: weights stream once per tick across both
        // phases.
        let batch_report = self.scheduler.mixed_batch(&chunks, &decode_lens);
        let shape = *self.scheduler.shape();
        let batch_bytes = shape.weight_bytes_per_token()
            + decode_lens.iter().map(|&l| shape.kv_bytes_per_token(l)).sum::<u64>()
            + chunks.iter().map(|c| shape.prefill_kv_bytes(c.start_len, c.tokens)).sum::<u64>();
        let batch_energy_mj = self.energy.token_energy_mj(batch_report.total_cycles, batch_bytes);

        // Split field borrows instead of moving `active` out: a panic in a
        // downstream policy or model step must not vanish every in-flight
        // session (same guarantee class as `TransformerModel::forward_token`).
        let Engine { active, model, arch, energy, variant, decode_threads, .. } = self;
        let ctx = StepContext { model, arch, energy, variant: *variant, shape };
        let workers = (*decode_threads).min(active.len()).max(1);
        let mut outcomes: Vec<Option<TokenEvent>> = Vec::with_capacity(active.len());
        if workers == 1 {
            for (session, &plan) in active.iter_mut().zip(&plans) {
                outcomes.push(ctx.execute(session, plan));
            }
        } else {
            // Order-preserving fan-out: contiguous chunks of the session
            // list, one worker each; outcomes are concatenated in chunk
            // order, so the tick's event order matches the serial path.
            let chunk = active.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = active
                    .chunks_mut(chunk)
                    .zip(plans.chunks(chunk))
                    .map(|(sessions, plans)| {
                        let ctx = &ctx;
                        scope.spawn(move || {
                            sessions
                                .iter_mut()
                                .zip(plans)
                                .map(|(session, &plan)| ctx.execute(session, plan))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    outcomes.extend(handle.join().expect("decode worker panicked"));
                }
            });
        }

        // Charge the tick's batched cost up front so the trace events
        // emitted from the drain below carry the post-tick cycle clock
        // (nothing in the drain reads these accumulators).
        self.batched_cycles += batch_report.total_cycles;
        self.batched_energy_mj += batch_energy_mj;

        // Retire finished sessions (frees their KV state and policies). No
        // user code runs past this point, so draining here is panic-safe.
        let sessions: Vec<ActiveSession> = self.active.drain(..).collect();
        let mut events: Vec<TokenEvent> = Vec::with_capacity(sessions.len());
        let mut decode_tokens = 0;
        let mut prefill_tokens = 0;
        let mut prefill_sessions = 0;
        for (mut session, outcome) in sessions.into_iter().zip(outcomes) {
            let Some(event) = outcome else {
                self.active.push(session);
                continue;
            };
            match event {
                TokenEvent::Generated { .. } => decode_tokens += 1,
                TokenEvent::PrefillProgress { tokens, remaining, .. } => {
                    prefill_tokens += tokens;
                    prefill_sessions += 1;
                    if remaining == 0 {
                        // The chunk completed the prompt: offer it to the
                        // prefix cache (coordinator-side, so insertion
                        // order is the deterministic session order).
                        self.harvest_prefix(&mut session);
                    }
                }
            }
            if self.tracer.is_some() {
                let kind = match &event {
                    TokenEvent::Generated { evictions, cache_len, .. } => {
                        if session.generated.len() == 1 {
                            TraceEventKind::FirstToken
                        } else {
                            TraceEventKind::DecodeTick {
                                evictions: *evictions as u32,
                                cache_len: *cache_len as u32,
                            }
                        }
                    }
                    TokenEvent::PrefillProgress { tokens, remaining, .. } => {
                        TraceEventKind::PrefillChunk { tokens: *tokens as u32, remaining: *remaining as u32 }
                    }
                };
                self.trace(session.trace_id, kind);
            }
            let finished = event.finished();
            events.push(event);
            if finished {
                self.retire(session);
            } else {
                self.active.push(session);
            }
        }

        self.ticks += 1;
        self.tokens_emitted += decode_tokens;
        self.prefill_tokens += prefill_tokens;
        self.max_concurrency = self.max_concurrency.max(events.len());

        EngineTick {
            batch_size: events.len(),
            decode_tokens,
            prefill_tokens,
            prefill_sessions,
            batch_cycles: batch_report.total_cycles,
            batch_energy_mj,
            kv_bytes_resident: self.kv_bytes_active(),
            events,
        }
    }

    /// Steps until every active session finishes, then drains all finished
    /// requests and batching statistics into an [`EngineReport`].
    pub fn run_to_completion(&mut self) -> EngineReport {
        while !self.active.is_empty() {
            self.step();
        }
        self.drain_report()
    }

    /// Drains every finished request and the accumulated batching
    /// statistics into an [`EngineReport`], resetting the accumulators so
    /// the engine can serve the next wave of requests from a clean slate.
    ///
    /// # Panics
    ///
    /// Panics if sessions are still active: draining mid-flight would
    /// split one wave's batched/sequential accounting across two reports.
    /// Step the engine until [`Engine::active_sessions`] is zero (or use
    /// [`Engine::run_to_completion`]) first.
    pub fn drain_report(&mut self) -> EngineReport {
        assert!(
            self.active.is_empty() && self.paused.is_empty(),
            "drain_report with {} active session(s) and {} paused session(s): finish the wave first",
            self.active.len(),
            self.paused.len()
        );
        let requests = std::mem::take(&mut self.finished);
        let seconds = self.batched_cycles as f64 / (self.arch.clock_ghz * 1e9);
        let report = EngineReport {
            ticks: self.ticks,
            total_tokens: self.tokens_emitted,
            prefill_tokens: self.prefill_tokens,
            batched_total_cycles: self.batched_cycles,
            batched_tokens_per_second: if seconds > 0.0 { self.tokens_emitted as f64 / seconds } else { 0.0 },
            batched_energy_mj_per_token: if self.tokens_emitted == 0 {
                0.0
            } else {
                self.batched_energy_mj / self.tokens_emitted as f64
            },
            sequential_total_cycles: self.sequential_cycles,
            max_concurrency: self.max_concurrency,
            prefix: self.prefix_cache_stats(),
            requests,
        };
        self.ticks = 0;
        self.tokens_emitted = 0;
        self.prefill_tokens = 0;
        self.batched_cycles = 0;
        self.batched_energy_mj = 0.0;
        self.sequential_cycles = 0;
        self.max_concurrency = 0;
        report
    }

    /// Releases `session`'s seed pin on its prefix-cache entry, if it
    /// holds one — the session no longer references the shared span, so
    /// the entry becomes evictable/spillable/expirable again (its LRU
    /// clock is touched on release).
    fn release_seed_pin(&mut self, session: &mut ActiveSession) {
        if let Some(id) = session.seed_pin.take() {
            if let Some(cache) = self.prefix_cache.as_mut() {
                cache.unpin_entry(id);
            }
        }
    }

    /// Finalizes a session into its per-request report and frees its KV
    /// state.
    fn retire(&mut self, mut session: ActiveSession) {
        self.release_seed_pin(&mut session);
        self.trace(
            session.trace_id,
            TraceEventKind::Finished { generated_tokens: session.generated.len() as u32 },
        );
        let seconds = session.total_cycles as f64 / (self.arch.clock_ghz * 1e9);
        let report = SimulationReport {
            tokens_per_second: if seconds > 0.0 { session.generated.len() as f64 / seconds } else { 0.0 },
            energy_mj_per_token: if session.generated.is_empty() {
                0.0
            } else {
                session.total_energy_mj / session.generated.len() as f64
            },
            generated: std::mem::take(&mut session.generated),
            attention_cycles_per_token: std::mem::take(&mut session.attention_cycles),
            total_cycles: session.total_cycles,
            evictions: session.evictions,
            final_cache_len: session.state.cache_len(),
            cache_budget: session.resident_cap,
        };
        session.state.clear(); // free the KV memory eagerly
        self.sequential_cycles += session.total_cycles;
        self.finished.push(RequestOutcome {
            session: session.id,
            policy: session.policy_kind,
            budget: session.budget,
            report,
        });
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("variant", &self.variant)
            .field("decode_threads", &self.decode_threads)
            .field("prefill_chunk", &self.prefill_chunk)
            .field("prefix_cache_entries", &self.prefix_cache.as_ref().map(PrefixCache::len))
            .field("active_sessions", &self.active.len())
            .field("paused_sessions", &self.paused.len())
            .field("finished", &self.finished.len())
            .field("ticks", &self.ticks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt() -> Vec<usize> {
        (1..=16).collect()
    }

    fn engine() -> Engine {
        EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid config")
    }

    #[test]
    fn budget_resolution_and_validation() {
        assert_eq!(Budget::Fixed(8).resolve(100), 8);
        assert_eq!(Budget::Ratio(0.5).resolve(16), 8);
        assert_eq!(Budget::Ratio(0.01).resolve(3), 1, "ratio floors at one resident token");
        assert_eq!(Budget::Unbounded.resolve(5), usize::MAX / 2);

        assert!(Budget::Unbounded.validate().is_ok());
        assert!(Budget::Fixed(1).validate().is_ok());
        assert!(Budget::Ratio(1.0).validate().is_ok());
        assert!(matches!(Budget::Fixed(0).validate(), Err(BuildError::InvalidBudget(_))));
        assert!(matches!(Budget::Ratio(0.0).validate(), Err(BuildError::InvalidBudget(_))));
        assert!(matches!(Budget::Ratio(1.5).validate(), Err(BuildError::InvalidBudget(_))));
        assert!(matches!(Budget::Ratio(-0.5).validate(), Err(BuildError::InvalidBudget(_))));
        assert!(matches!(Budget::Ratio(f64::NAN).validate(), Err(BuildError::InvalidBudget(_))));
    }

    #[test]
    fn budget_parses_from_strings() {
        assert_eq!("unbounded".parse::<Budget>().unwrap(), Budget::Unbounded);
        assert_eq!("fixed:12".parse::<Budget>().unwrap(), Budget::Fixed(12));
        assert_eq!("12".parse::<Budget>().unwrap(), Budget::Fixed(12));
        assert_eq!("ratio:0.25".parse::<Budget>().unwrap(), Budget::Ratio(0.25));
        assert_eq!("0.25".parse::<Budget>().unwrap(), Budget::Ratio(0.25));
        assert!("ratio:2.0".parse::<Budget>().is_err());
        assert!("0".parse::<Budget>().is_err());
        assert!("banana".parse::<Budget>().is_err());
    }

    #[test]
    fn builder_rejects_bad_model() {
        let mut bad = ModelConfig::tiny();
        bad.n_heads = 5;
        assert!(matches!(EngineBuilder::new().model(bad).build(), Err(BuildError::InvalidModel(_))));
    }

    #[test]
    fn submit_rejects_bad_requests() {
        let mut engine = engine();
        assert!(matches!(engine.submit(Request::new(vec![], 4)), Err(BuildError::InvalidRequest(_))));
        assert!(matches!(
            engine.submit(Request::new(vec![1, 10_000], 4)),
            Err(BuildError::InvalidRequest(_))
        ));
        assert!(matches!(
            engine.submit(Request::new(prompt(), 4).budget(Budget::Fixed(0))),
            Err(BuildError::InvalidBudget(_))
        ));
        assert_eq!(engine.active_sessions(), 0);
    }

    #[test]
    fn streaming_emits_one_event_per_session_per_tick() {
        let mut engine = engine();
        let a = engine.submit(Request::new(prompt(), 4)).unwrap();
        let b = engine.submit(Request::new(vec![2, 4, 6, 8], 6).policy(PolicyKind::H2o)).unwrap();
        assert_eq!(engine.active_sessions(), 2);

        let tick = engine.step();
        assert_eq!(tick.batch_size, 2);
        assert_eq!(tick.events.len(), 2);
        assert_eq!(tick.events[0].session(), a);
        assert_eq!(tick.events[1].session(), b);
        assert!(tick.batch_cycles > 0);
        assert!(tick.batch_energy_mj > 0.0);

        // Session a finishes after 4 ticks, b after 6.
        let mut ticks = 1;
        while engine.active_sessions() > 0 {
            engine.step();
            ticks += 1;
        }
        assert_eq!(ticks, 6);
        assert!(engine.is_finished(a) && engine.is_finished(b));
        assert_eq!(engine.report(a).unwrap().generated.len(), 4);
        assert_eq!(engine.report(b).unwrap().generated.len(), 6);
    }

    #[test]
    fn stop_tokens_end_a_session_early() {
        let mut engine = engine();
        // Find what the first generated token will be, then use it as stop.
        let probe = engine.submit(Request::new(prompt(), 1)).unwrap();
        engine.step();
        let first = engine.take_report(probe).unwrap().generated[0];

        let s = engine.submit(Request::new(prompt(), 64).stop_tokens(vec![first])).unwrap();
        engine.step();
        assert!(engine.is_finished(s), "stop token must end the session");
        let report = engine.take_report(s).unwrap();
        assert_eq!(report.generated, vec![first], "stop token is kept in the output");
    }

    #[test]
    fn finished_sessions_free_their_kv_state() {
        let mut engine = engine();
        let s = engine.submit(Request::new(prompt(), 2)).unwrap();
        engine.step();
        engine.step();
        assert_eq!(engine.active_sessions(), 0);
        assert!(engine.is_finished(s));
        // The engine's accumulators survive; the report drains them.
        let report = engine.drain_report();
        assert_eq!(report.requests.len(), 1);
        assert_eq!(report.ticks, 2);
        assert_eq!(report.total_tokens, 2);
        // Drained: a second drain is empty.
        let empty = engine.drain_report();
        assert!(empty.requests.is_empty());
        assert_eq!(empty.ticks, 0);
    }

    #[test]
    fn zero_token_request_finishes_at_submit() {
        let mut engine = engine();
        let s = engine.submit(Request::new(prompt(), 0)).unwrap();
        assert!(engine.is_finished(s));
        let report = engine.take_report(s).unwrap();
        assert!(report.generated.is_empty());
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.tokens_per_second, 0.0);
        assert_eq!(report.final_cache_len, prompt().len());
    }

    #[test]
    fn batched_tick_is_cheaper_than_solo_ticks() {
        let mut engine = engine();
        for _ in 0..4 {
            engine.submit(Request::new(prompt(), 8)).unwrap();
        }
        let report = engine.run_to_completion();
        assert_eq!(report.requests.len(), 4);
        assert_eq!(report.max_concurrency, 4);
        assert!(report.batching_speedup() > 1.0, "speedup {}", report.batching_speedup());
        assert!(report.batched_tokens_per_second > 0.0);
        assert!(report.batched_energy_mj_per_token > 0.0);
        assert_eq!(report.total_tokens, 32);
        assert_eq!(report.ticks, 8);
    }

    #[test]
    fn taking_a_report_midway_keeps_aggregates_consistent() {
        // `sequential_total_cycles` must cover every session the batched
        // accumulators cover, even when its report was taken before the
        // drain (the streaming pattern Simulation::run uses).
        let run = |take_midway: bool| {
            let mut engine = engine();
            let short = engine.submit(Request::new(prompt(), 2)).unwrap();
            engine.submit(Request::new(prompt(), 6)).unwrap();
            engine.step();
            engine.step();
            if take_midway {
                engine.take_report(short).unwrap();
            }
            engine.run_to_completion()
        };
        let full = run(false);
        let taken = run(true);
        assert_eq!(taken.sequential_total_cycles, full.sequential_total_cycles);
        assert_eq!(taken.batched_total_cycles, full.batched_total_cycles);
        assert_eq!(taken.requests.len(), 1, "taken report is no longer listed");
    }

    #[test]
    #[should_panic(expected = "active session")]
    fn draining_mid_flight_panics() {
        let mut engine = engine();
        engine.submit(Request::new(prompt(), 10)).unwrap();
        engine.step();
        engine.drain_report();
    }

    #[test]
    fn pause_and_resume_do_not_change_token_streams() {
        // Reference run: two sessions decode uninterrupted.
        let mut reference = engine();
        let ra = reference.submit(Request::new(prompt(), 8)).unwrap();
        let rb = reference.submit(Request::new(vec![3, 6, 9, 12], 8).policy(PolicyKind::H2o)).unwrap();
        let ref_report = reference.run_to_completion();
        let ref_tokens = |s: Session| {
            ref_report.requests.iter().find(|r| r.session == s).unwrap().report.generated.clone()
        };

        // Preempted run: same requests, but session a is paused for three
        // ticks in the middle.
        let mut engine = engine();
        let a = engine.submit(Request::new(prompt(), 8)).unwrap();
        let b = engine.submit(Request::new(vec![3, 6, 9, 12], 8).policy(PolicyKind::H2o)).unwrap();
        engine.step();
        engine.step();
        let bytes_out = engine.pause(a).expect("a is active");
        assert!(bytes_out > 0);
        assert!(engine.is_paused(a) && !engine.is_active(a));
        assert_eq!(engine.active_sessions(), 1);
        for _ in 0..3 {
            let tick = engine.step();
            assert_eq!(tick.batch_size, 1, "paused session must not advance");
            assert!(tick.events.iter().all(|e| e.session() == b));
        }
        let bytes_in = engine.resume(a).expect("a is paused");
        assert_eq!(bytes_out, bytes_in, "pause leaves KV state untouched");
        let report = engine.run_to_completion();
        for (session, reference_session) in [(a, ra), (b, rb)] {
            let got = &report.requests.iter().find(|r| r.session == session).unwrap().report.generated;
            assert_eq!(got, &ref_tokens(reference_session), "preemption changed a token stream");
        }
    }

    #[test]
    fn pause_and_resume_reject_unknown_sessions() {
        let mut engine = engine();
        let s = engine.submit(Request::new(prompt(), 2)).unwrap();
        assert!(engine.pause(Session(99)).is_none());
        assert!(engine.resume(s).is_none(), "active session is not paused");
        engine.pause(s).unwrap();
        assert!(engine.pause(s).is_none(), "paused session is not active");
        engine.resume(s).unwrap();
        engine.run_to_completion();
    }

    #[test]
    fn discard_frees_kv_and_forgets_the_session() {
        let mut engine = engine();
        let a = engine.submit(Request::new(prompt(), 8)).unwrap();
        let b = engine.submit(Request::new(vec![3, 6, 9, 12], 8)).unwrap();
        engine.step();
        let before = engine.kv_bytes_active();

        // Discarding an active session frees its resident bytes and drops
        // it from the batch without a finished report.
        let freed = engine.discard(a).expect("a is in flight");
        assert!(freed > 0);
        assert_eq!(engine.kv_bytes_active(), before - freed);
        assert!(!engine.is_active(a) && !engine.is_paused(a));
        assert_eq!(engine.active_sessions(), 1);

        // Discarding a paused session works the same way.
        engine.pause(b).unwrap();
        assert!(engine.discard(b).is_some());
        assert_eq!(engine.kv_bytes_active(), 0);

        // Unknown or already-discarded sessions are refused.
        assert!(engine.discard(a).is_none());
        assert!(engine.discard(Session(99)).is_none());

        // Neither session ever reaches the report.
        let report = engine.run_to_completion();
        assert!(report.requests.is_empty(), "discarded sessions never finish");
    }

    #[test]
    fn kv_byte_accounting_tracks_sessions() {
        let mut engine = engine();
        assert_eq!(engine.kv_bytes_active(), 0);
        let per_token = engine.kv_bytes_per_token();
        assert!(per_token > 0);

        let s = engine.submit(Request::new(prompt(), 4).budget(Budget::Unbounded)).unwrap();
        // After prefill every layer holds exactly the prompt.
        assert_eq!(engine.kv_bytes_active(), prompt().len() as u64 * per_token);
        assert_eq!(engine.session_kv_bytes(s), Some(prompt().len() as u64 * per_token));

        let tick = engine.step();
        assert_eq!(tick.kv_bytes_resident, (prompt().len() as u64 + 1) * per_token);

        // Paused sessions leave the active pool but stay queryable.
        engine.pause(s).unwrap();
        assert_eq!(engine.kv_bytes_active(), 0);
        assert!(engine.session_kv_bytes(s).is_some());
        engine.resume(s).unwrap();
        engine.run_to_completion();
        assert_eq!(engine.kv_bytes_active(), 0, "finished sessions free their KV state");
        assert!(engine.session_kv_bytes(s).is_none());
    }

    #[test]
    fn tighten_budget_shrinks_resident_cap() {
        let mut engine = engine();
        // Sliding-window can always name a victim beyond its sink, so the
        // shrunk cap is actually reached.
        let request = Request::new(prompt(), 8).policy(PolicyKind::SlidingWindow).budget(Budget::Unbounded);
        let s = engine.submit(request).unwrap();
        assert_eq!(engine.session_remaining_tokens(s), Some(8));
        engine.step();
        assert_eq!(engine.session_remaining_tokens(s), Some(7));

        assert_eq!(engine.tighten_budget(s, 6), Some(6));
        assert_eq!(engine.tighten_budget(s, 10), Some(6), "tighten never raises the cap");
        assert_eq!(engine.tighten_budget(Session(99), 4), None);

        let tick = engine.step();
        let TokenEvent::Generated { evictions, cache_len, .. } = tick.events[0] else {
            panic!("decoding session must emit a generated token");
        };
        assert!(evictions > 0, "next tick evicts down to the new cap");
        assert_eq!(cache_len, 6);
        assert_eq!(engine.tighten_budget(s, 0), Some(1), "cap floors at one resident token");
        engine.run_to_completion();
    }

    #[test]
    #[should_panic(expected = "paused session")]
    fn draining_with_paused_sessions_panics() {
        let mut engine = engine();
        let s = engine.submit(Request::new(prompt(), 10)).unwrap();
        engine.step();
        engine.pause(s).unwrap();
        engine.drain_report();
    }

    #[test]
    fn decode_threads_do_not_change_tokens_or_reports() {
        let run = |threads: usize| {
            let mut engine = EngineBuilder::new()
                .model(ModelConfig::tiny())
                .decode_threads(threads)
                .build()
                .expect("valid config");
            for (i, policy) in PolicyKind::ALL.iter().enumerate() {
                let prompt: Vec<usize> = (0..12 + i).map(|j| (j * 5 + i) % 60 + 1).collect();
                engine
                    .submit(Request::new(prompt, 6 + i).policy(*policy).budget(Budget::Ratio(0.5)))
                    .unwrap();
            }
            engine.run_to_completion()
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "decode_threads({threads}) diverged from serial");
        }
    }

    #[test]
    fn decode_threads_clamp_to_at_least_one() {
        let engine = EngineBuilder::new().decode_threads(0).build().unwrap();
        assert_eq!(engine.decode_threads(), 1);
    }

    fn chunked_engine(chunk: usize) -> Engine {
        EngineBuilder::new().model(ModelConfig::tiny()).prefill_chunk(chunk).build().expect("valid config")
    }

    #[test]
    fn chunked_prefill_consumes_prompt_on_the_clock() {
        let mut engine = chunked_engine(4);
        let s = engine.submit(Request::new((1..=10).collect::<Vec<_>>(), 3)).unwrap();
        assert_eq!(engine.session_phase(s), Some(SessionPhase::Prefilling));
        assert_eq!(engine.kv_bytes_active(), 0, "submit reserves but does not prefill");
        assert!(engine.is_active(s), "prefilling sessions live in the active set");

        // 10 prompt tokens at chunk 4: three prefill ticks (4 + 4 + 2).
        for (tick_no, (expect_tokens, expect_remaining)) in [(4, 6), (4, 2), (2, 0)].iter().enumerate() {
            let tick = engine.step();
            assert_eq!(tick.batch_size, 1);
            assert_eq!(tick.prefill_tokens, *expect_tokens, "tick {tick_no}");
            assert_eq!(tick.prefill_sessions, 1);
            assert_eq!(tick.decode_tokens, 0);
            assert!(tick.batch_cycles > 0, "prefill ticks are costed");
            assert!(tick.batch_energy_mj > 0.0);
            let TokenEvent::PrefillProgress { session, tokens, remaining, cache_len, finished } =
                tick.events[0]
            else {
                panic!("prefilling session must emit PrefillProgress");
            };
            assert_eq!(session, s);
            assert_eq!(tokens, *expect_tokens);
            assert_eq!(remaining, *expect_remaining);
            assert_eq!(cache_len, 10 - expect_remaining, "prefill never evicts");
            assert!(!finished, "a request with max_new_tokens > 0 survives prefill");
        }
        assert_eq!(engine.session_phase(s), Some(SessionPhase::Decoding));

        // Decode: one generated token per tick, as ever.
        let tick = engine.step();
        assert_eq!((tick.decode_tokens, tick.prefill_tokens), (1, 0));
        assert!(matches!(tick.events[0], TokenEvent::Generated { .. }));
        while engine.is_active(s) {
            engine.step();
        }
        assert_eq!(engine.session_phase(s), Some(SessionPhase::Finished));
    }

    #[test]
    fn chunked_prefill_matches_instant_prefill_exactly() {
        // The compatibility invariant: the chunk size changes only *when*
        // prompt work lands on the clock, never which tokens a request
        // generates, what it evicts, or its decode-side report.
        for policy in PolicyKind::ALL {
            let request = || {
                let prompt: Vec<usize> = (0..23).map(|j| (j * 7 + 3) % 60 + 1).collect();
                Request::new(prompt, 8).policy(policy).budget(Budget::Ratio(0.5))
            };
            let mut instant = engine();
            let si = instant.submit(request()).unwrap();
            while instant.is_active(si) {
                instant.step();
            }
            let reference = instant.take_report(si).unwrap();

            for chunk in [1, 3, 8, 64] {
                let mut chunked = chunked_engine(chunk);
                let sc = chunked.submit(request()).unwrap();
                while chunked.is_active(sc) {
                    chunked.step();
                }
                assert_eq!(
                    chunked.take_report(sc).unwrap(),
                    reference,
                    "{policy}/chunk {chunk}: chunked prefill changed the request's outcome"
                );
                let report = chunked.drain_report();
                assert_eq!(
                    report.prefill_tokens, 23,
                    "{policy}/chunk {chunk}: the whole prompt lands on the clock"
                );
            }
        }
    }

    #[test]
    fn chunked_prefill_is_identical_across_decode_threads() {
        let run = |threads: usize| {
            let mut engine = EngineBuilder::new()
                .model(ModelConfig::tiny())
                .decode_threads(threads)
                .prefill_chunk(3)
                .build()
                .expect("valid config");
            for (i, policy) in PolicyKind::ALL.iter().enumerate() {
                let prompt: Vec<usize> = (0..12 + i).map(|j| (j * 5 + i) % 60 + 1).collect();
                engine
                    .submit(Request::new(prompt, 6 + i).policy(*policy).budget(Budget::Ratio(0.5)))
                    .unwrap();
            }
            engine.run_to_completion()
        };
        let serial = run(1);
        assert!(serial.prefill_tokens > 0);
        for threads in [2, 8] {
            assert_eq!(run(threads), serial, "decode_threads({threads}) diverged under chunked prefill");
        }
    }

    #[test]
    fn tick_token_budget_throttles_prefill_but_never_decode() {
        let mut engine = EngineBuilder::new()
            .model(ModelConfig::tiny())
            .prefill_chunk(8)
            .tick_token_budget(2)
            .build()
            .expect("valid config");
        let a = engine.submit(Request::new(vec![1; 8], 12)).unwrap();
        let b = engine.submit(Request::new(vec![2; 8], 12)).unwrap();

        // Budget 2, chunk 8: the first prefilling session takes the whole
        // budget; the second waits (no event).
        let tick = engine.step();
        assert_eq!(tick.prefill_tokens, 2);
        assert_eq!(tick.batch_size, 1, "the starved session emits no event");
        assert_eq!(tick.events[0].session(), a);

        // Prefill keeps making progress under the budget until both
        // sessions decode.
        while engine.session_phase(a) == Some(SessionPhase::Prefilling)
            || engine.session_phase(b) == Some(SessionPhase::Prefilling)
        {
            let tick = engine.step();
            assert!(tick.prefill_tokens + tick.decode_tokens <= 2, "tick budget respected");
            assert!(tick.batch_size > 0, "every tick makes progress");
        }

        // Both decoding with a budget of 2: decode is never throttled, so
        // both sessions advance every tick.
        let tick = engine.step();
        assert_eq!(tick.decode_tokens, 2);
        while engine.active_sessions() > 0 {
            engine.step();
        }
        assert!(engine.is_finished(a) && engine.is_finished(b));
    }

    #[test]
    fn zero_token_request_retires_at_end_of_chunked_prefill() {
        let mut engine = chunked_engine(2);
        let s = engine.submit(Request::new(vec![1, 2, 3, 4, 5], 0)).unwrap();
        assert!(engine.is_active(s), "chunked zero-token requests still prefill on the clock");
        let mut last = EngineTick::default();
        while engine.is_active(s) {
            last = engine.step();
        }
        assert!(
            matches!(last.events[0], TokenEvent::PrefillProgress { remaining: 0, finished: true, .. }),
            "the completing chunk retires a zero-token request"
        );
        let report = engine.take_report(s).unwrap();
        assert!(report.generated.is_empty());
        assert_eq!(report.final_cache_len, 5);
    }

    #[test]
    fn prefill_chunk_and_tick_budget_clamp_to_at_least_one() {
        let engine = EngineBuilder::new().prefill_chunk(0).tick_token_budget(0).build().unwrap();
        assert_eq!(engine.prefill_chunk(), 1);
        assert_eq!(engine.tick_token_budget(), 1);
    }

    #[test]
    fn reserve_math_lives_on_request() {
        let request = Request::new(vec![1; 10], 6).budget(Budget::Unbounded);
        assert_eq!(request.peak_resident_tokens(), 16);
        assert_eq!(request.reserve_resident_tokens(), 17, "unbounded: peak + overshoot slot");
        let capped = Request::new(vec![1; 10], 6).budget(Budget::Fixed(4));
        assert_eq!(capped.peak_resident_tokens(), 16, "the peak bound ignores the budget");
        assert_eq!(capped.reserve_resident_tokens(), 12, "reserve clips to the prompt + slack");
    }

    #[test]
    fn never_evicts_requires_cap_at_or_above_peak() {
        assert!(Request::new(vec![1; 10], 6).budget(Budget::Unbounded).never_evicts());
        assert!(Request::new(vec![1; 10], 6).budget(Budget::Fixed(16)).never_evicts());
        assert!(!Request::new(vec![1; 10], 6).budget(Budget::Fixed(15)).never_evicts());
        assert!(!Request::new(vec![1; 10], 6).budget(Budget::Ratio(0.5)).never_evicts());
        assert!(Request::new(vec![1; 10], 0).budget(Budget::Ratio(1.0)).never_evicts());
    }

    #[test]
    fn session_phase_tracks_paused_and_unknown_sessions() {
        let mut engine = chunked_engine(4);
        let s = engine.submit(Request::new(prompt(), 2)).unwrap();
        assert_eq!(engine.session_phase(Session(99)), None);
        engine.pause(s).unwrap();
        assert_eq!(engine.session_phase(s), Some(SessionPhase::Prefilling), "paused sessions keep phase");
        engine.resume(s).unwrap();
        while engine.is_active(s) {
            engine.step();
        }
        assert_eq!(engine.session_phase(s), Some(SessionPhase::Finished));
        engine.take_report(s).unwrap();
        assert_eq!(engine.session_phase(s), None, "taken reports forget the session");
    }

    fn prefix_engine(chunk: usize) -> Engine {
        let mut builder = EngineBuilder::new().model(ModelConfig::tiny()).prefix_cache(PrefixCacheConfig {
            min_match_tokens: 4,
            max_entries: 8,
            ..PrefixCacheConfig::default()
        });
        if chunk > 0 {
            builder = builder.prefill_chunk(chunk);
        }
        builder.build().expect("valid config")
    }

    /// A prompt of `suffix` appended to a fixed 10-token shared prefix.
    fn shared_prompt(suffix: &[usize]) -> Vec<usize> {
        let mut prompt: Vec<usize> = (1..=10).collect();
        prompt.extend_from_slice(suffix);
        prompt
    }

    #[test]
    fn prefix_cache_disabled_engine_reports_zero_stats() {
        let mut engine = engine();
        assert!(!engine.prefix_cache_enabled());
        assert_eq!(engine.prefix_match_len(&prompt()), 0);
        engine.submit(Request::new(prompt(), 2)).unwrap();
        let report = engine.run_to_completion();
        assert_eq!(report.prefix, crate::prefix::PrefixCacheStats::default());
        assert_eq!(engine.prefix_cache_bytes(), 0);
    }

    #[test]
    fn prefix_hit_seeds_shared_rows_and_skips_prefill() {
        let mut engine = prefix_engine(0);
        let per_token = engine.kv_bytes_per_token();

        // Cold submit: full prefill, prompt inserted as an entry.
        let a = engine.submit(Request::new(shared_prompt(&[40, 41]), 3)).unwrap();
        let stats = engine.prefix_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (0, 1, 1));
        assert_eq!(engine.prefix_cache_bytes(), 12 * per_token);
        assert_eq!(engine.session_kv_bytes(a), Some(12 * per_token), "cold session owns its rows");

        // Warm submit: the 10-token shared prefix is served from the
        // cache (the suffixes diverge at token 11); only the unshared
        // rows are privately owned.
        let b = engine.submit(Request::new(shared_prompt(&[50, 51]), 3)).unwrap();
        let stats = engine.prefix_cache_stats();
        assert_eq!((stats.hits, stats.shared_tokens), (1, 10));
        assert_eq!(engine.session_kv_bytes(b), Some(2 * per_token), "shared span is not owned");
        assert_eq!(
            engine.kv_bytes_active(),
            12 * per_token + 2 * per_token,
            "active bytes count each session's owned rows only"
        );

        engine.run_to_completion();
        assert_eq!(
            engine.prefix_cache_bytes(),
            12 * per_token,
            "only the cold prompt is inserted — hit prompts add no entry"
        );
    }

    #[test]
    fn prefix_match_len_estimates_submit_sharing() {
        let mut engine = prefix_engine(0);
        assert_eq!(engine.prefix_match_len(&shared_prompt(&[40])), 0, "cold cache shares nothing");
        engine.submit(Request::new(shared_prompt(&[40, 41]), 1)).unwrap();
        assert_eq!(engine.prefix_match_len(&shared_prompt(&[50])), 10);
        assert_eq!(engine.prefix_match_len(&shared_prompt(&[40, 41])), 11, "cap is one below the prompt");
        assert_eq!(engine.prefix_match_len(&[1, 2, 9]), 0, "below minimum is a miss");
    }

    #[test]
    fn prefix_hits_do_not_change_token_streams_or_reports() {
        // The tentpole invariant at unit scope (the property test sweeps
        // policies × chunks × threads): a hit run's per-request reports
        // equal a cold engine's for the same requests.
        let requests = || {
            vec![
                Request::new(shared_prompt(&[40, 41]), 6).policy(PolicyKind::Voting),
                Request::new(shared_prompt(&[50, 51, 52]), 5).policy(PolicyKind::H2o),
                Request::new(shared_prompt(&[60]), 4).policy(PolicyKind::SlidingWindow),
            ]
        };
        let mut cold = engine();
        let mut warm = prefix_engine(0);
        let cold_sessions: Vec<Session> = requests().into_iter().map(|r| cold.submit(r).unwrap()).collect();
        let warm_sessions: Vec<Session> = requests().into_iter().map(|r| warm.submit(r).unwrap()).collect();
        assert!(warm.prefix_cache_stats().hits >= 2, "later submits must hit the shared prefix");
        let cold_report = cold.run_to_completion();
        let warm_report = warm.run_to_completion();
        for (c, w) in cold_sessions.iter().zip(&warm_sessions) {
            let find = |report: &EngineReport, s: Session| {
                report.requests.iter().find(|r| r.session == s).unwrap().report.clone()
            };
            assert_eq!(find(&warm_report, *w), find(&cold_report, *c), "prefix sharing changed a report");
        }
    }

    #[test]
    fn chunked_prefill_charges_only_the_unshared_suffix() {
        // Chunk 4 over a 12-token prompt: cold needs ceil(12/4) = 3
        // prefill ticks and 12 on-clock tokens; a 10-token hit leaves a
        // 2-token suffix = 1 tick, and the tick's chunk starts at the
        // shared length so attention still covers the full resident span.
        let mut engine = prefix_engine(4);
        let a = engine.submit(Request::new(shared_prompt(&[40, 41]), 2)).unwrap();
        let mut prefill_ticks = 0;
        while engine.session_phase(a) == Some(SessionPhase::Prefilling) {
            let tick = engine.step();
            prefill_ticks += tick.prefill_sessions;
        }
        assert_eq!(prefill_ticks, 3);
        while engine.is_active(a) {
            engine.step();
        }

        let b = engine.submit(Request::new(shared_prompt(&[50, 51]), 2)).unwrap();
        assert_eq!(engine.prefix_cache_stats().hits, 1);
        let tick = engine.step();
        let TokenEvent::PrefillProgress { tokens, remaining, cache_len, .. } = tick.events[0] else {
            panic!("hit session still prefills its suffix");
        };
        assert_eq!((tokens, remaining), (2, 0), "one chunk covers the whole unshared suffix");
        assert_eq!(cache_len, 12, "the resident cache spans shared + suffix rows");
        while engine.is_active(b) {
            engine.step();
        }
        let report = engine.drain_report();
        assert_eq!(report.prefill_tokens, 12 + 2, "only unshared tokens land on the clock");
        assert_eq!(report.prefix.shared_tokens, 10);
    }

    #[test]
    fn prefix_insertions_are_miss_only_deduped_and_capped() {
        let mut engine = EngineBuilder::new()
            .model(ModelConfig::tiny())
            .prefix_cache(PrefixCacheConfig {
                min_match_tokens: 4,
                max_entries: 2,
                ..PrefixCacheConfig::default()
            })
            .build()
            .unwrap();
        // Three distinct prefix groups; the second prompt of group 0 hits
        // and therefore inserts nothing.
        let group = |g: usize, suffix: usize| -> Vec<usize> {
            let mut prompt: Vec<usize> = (1..=10).map(|t| t + g * 10).collect();
            prompt.push(suffix);
            prompt
        };
        for (g, suffix) in [(0, 40), (0, 50), (1, 40), (2, 40)] {
            engine.submit(Request::new(group(g, suffix), 1)).unwrap();
        }
        let stats = engine.prefix_cache_stats();
        assert_eq!(stats.hits, 1, "the repeated group-0 prompt hits");
        assert_eq!(stats.entries, 2, "capacity bounds the entry count (group 2 arrived full)");
        assert_eq!(stats.insertions, 2, "hit and overflow prompts are not inserted");
        engine.run_to_completion();
    }

    #[test]
    fn report_display_mentions_prefix_cache_only_when_used() {
        let mut plain = engine();
        plain.submit(Request::new(prompt(), 2)).unwrap();
        assert!(!plain.run_to_completion().to_string().contains("prefix cache"));

        let mut warm = prefix_engine(0);
        warm.submit(Request::new(shared_prompt(&[40, 41]), 2)).unwrap();
        warm.submit(Request::new(shared_prompt(&[50, 51]), 2)).unwrap();
        let text = warm.run_to_completion().to_string();
        assert!(text.contains("prefix cache"), "{text}");
        assert!(text.contains("1 hits / 2 lookups"), "{text}");
    }

    #[test]
    fn report_display_lists_requests() {
        let mut engine = engine();
        engine.submit(Request::new(prompt(), 3).policy(PolicyKind::SlidingWindow)).unwrap();
        let report = engine.run_to_completion();
        let text = report.to_string();
        assert!(text.contains("sliding_window"), "{text}");
        assert!(text.contains("batching speedup"), "{text}");
    }

    #[test]
    fn migrated_session_continues_its_token_stream() {
        let request = || Request::new(prompt(), 8).policy(PolicyKind::Voting).budget(Budget::Ratio(0.5));

        let mut reference = engine();
        let r = reference.submit(request()).unwrap();
        let report = reference.run_to_completion();
        let expected = report.requests.iter().find(|o| o.session == r).unwrap().report.generated.clone();

        let mut source = engine();
        let s = source.submit(request()).unwrap();
        for _ in 0..3 {
            source.step();
        }
        source.pause(s).unwrap();
        let migrated = source.extract(s).expect("paused sessions are extractable");
        assert!(migrated.kv_bytes() > 0);
        assert_eq!(migrated.generated_tokens(), 3);
        assert_eq!(source.active_sessions() + source.paused_sessions(), 0, "extraction empties the source");

        let mut target = engine();
        // Occupy an id on the target first, so adoption visibly re-ids.
        let occupant = target.submit(Request::new(prompt(), 1)).unwrap();
        let adopted = target.adopt(migrated).expect("identical geometry");
        assert_ne!(adopted, occupant, "adopted sessions get a fresh target-engine id");
        assert!(target.is_paused(adopted), "adoption lands in the paused set");
        target.resume(adopted).unwrap();
        let report = target.run_to_completion();
        let migrated_tokens =
            &report.requests.iter().find(|o| o.session == adopted).unwrap().report.generated;
        assert_eq!(*migrated_tokens, expected, "migration never changes the token stream");
    }

    #[test]
    fn extract_requires_a_paused_session_and_adopt_checks_geometry() {
        let mut source = engine();
        let s = source.submit(Request::new(prompt(), 4)).unwrap();
        assert!(source.extract(s).is_none(), "active sessions cannot be extracted mid-batch");
        source.pause(s).unwrap();
        let migrated = source.extract(s).unwrap();

        let mut other_model = ModelConfig::tiny();
        other_model.d_model *= 2;
        other_model.ffn_hidden *= 2;
        let mut mismatched = EngineBuilder::new().model(other_model).build().unwrap();
        assert!(matches!(mismatched.adopt(migrated), Err(BuildError::InvalidRequest(_))));
    }

    #[test]
    fn extract_privatizes_shared_prefix_spans() {
        let mut source = prefix_engine(0);
        // First prompt inserts the shared prefix; the second hits it and
        // holds the span as shared (accounting-only) bytes.
        let warm = source.submit(Request::new(shared_prompt(&[21, 22, 23, 24]), 2)).unwrap();
        while source.is_active(warm) {
            source.step();
        }
        let s = source.submit(Request::new(shared_prompt(&[31, 32, 33, 34]), 6)).unwrap();
        source.step();
        source.pause(s).unwrap();
        let owned = source.session_kv_bytes(s).unwrap();
        let migrated = source.extract(s).unwrap();
        assert!(
            migrated.kv_bytes() > owned,
            "extraction privatizes the shared span: payload {} must exceed owned {}",
            migrated.kv_bytes(),
            owned
        );

        // The privatized payload decodes to the same stream a fresh target
        // produces for the uninterrupted request.
        let mut target = prefix_engine(0);
        let adopted = target.adopt(migrated).unwrap();
        target.resume(adopted).unwrap();
        let report = target.run_to_completion();
        let migrated_tokens =
            report.requests.iter().find(|o| o.session == adopted).unwrap().report.generated.clone();

        let mut reference = prefix_engine(0);
        let w = reference.submit(Request::new(shared_prompt(&[21, 22, 23, 24]), 2)).unwrap();
        while reference.is_active(w) {
            reference.step();
        }
        let r = reference.submit(Request::new(shared_prompt(&[31, 32, 33, 34]), 6)).unwrap();
        let report = reference.run_to_completion();
        let expected = report.requests.iter().find(|o| o.session == r).unwrap().report.generated.clone();
        assert_eq!(migrated_tokens, expected);
    }
}

//! Shared-prefix KV reuse across sessions: the engine-level prefix cache.
//!
//! Serving workloads at scale are dominated by common system prompts and
//! few-shot templates; recomputing (and re-storing) the identical prefix
//! KV for every session wastes both HBM bytes and prefill cycles. A
//! [`PrefixCache`] stores, per cached prefix, everything a new session
//! needs to *skip* prefilling the shared span while remaining
//! bit-identical to an uncached run:
//!
//! * the per-layer **KV rows** of the prefix (a [`SequenceState`] holding
//!   exactly the prefix tokens — prefill never evicts, so these rows are a
//!   pure function of the token sequence), and
//! * the per-token **attention-score observation stream**
//!   ([`ScoreBuffer`] per prefix token). Eviction policies accumulate
//!   state from prefill observations (H2O's score sums, voting's vote
//!   counts), so a session that skips the shared forward passes must
//!   *replay* the recorded observations into its fresh policy stack —
//!   otherwise its later eviction decisions, and therefore its generated
//!   tokens, would drift from an uncached run.
//!
//! Because RoPE rotates keys by **absolute** position and every prompt
//! places the shared prefix at positions `0..k`, the cached rows are
//! valid for any request whose prompt starts with the same tokens. The
//! observation stream is likewise a deterministic function of the prefix
//! tokens alone.
//!
//! Matching is token-exact longest-prefix, bounded above by
//! `prompt.len() - 1`: the final prompt token is always recomputed, since
//! its forward pass produces the logits the first decode step samples
//! from. Matches shorter than [`PrefixCacheConfig::min_match_tokens`]
//! are ignored (tiny shared spans are not worth the bookkeeping).
//!
//! # Churn: LRU eviction, TTL expiry and the host spill tier
//!
//! The v1 cache was insert-only within a run, which made the admission
//! discount trivially sound but modelled nothing like a churning
//! production cache. v2 lets entries *leave*:
//!
//! * **Byte-pressure eviction.** When an insertion (or a promotion from
//!   the host tier) would push device-resident bytes past
//!   [`PrefixCacheConfig::max_bytes`], the cache evicts unpinned entries
//!   in LRU order (`last_used`, ties broken by insertion id — fully
//!   deterministic, no wall clock). With
//!   [`PrefixCacheConfig::spill`] off the victim is dropped; with spill
//!   on it moves to a **host-memory tier**: its KV rows leave HBM over
//!   the host link (a `PrefixSpill` transfer the serving layer charges)
//!   but stay warm in host RAM. A later hit on a spilled entry
//!   *promotes* it back (a `PrefixFill` transfer whose latency the
//!   serving layer serializes onto the engine clock exactly like a
//!   session swap-in).
//! * **TTL expiry.** [`PrefixCache::advance_clock`] runs on the
//!   coordinator each virtual tick; unpinned entries (either tier) idle
//!   for [`PrefixCacheConfig::ttl_ticks`] or longer are expired and
//!   dropped. The clock is the serving layer's virtual tick counter, so
//!   expiry is bit-identical across `decode_threads` and across runs.
//! * **Pins.** Eviction interacts with the subtlest soundness condition
//!   in the codebase: an admission controller that discounted a
//!   request's reservation by its shared prefix must be guaranteed the
//!   share still exists at submit time. v2 makes that explicit with
//!   per-entry reference counts: a serving layer pins the matched entry
//!   when it takes the discount ([`PrefixCache::pin`]), and every hit
//!   session holds a *seed pin* on its entry from submit to retirement.
//!   Pinned entries are immune to eviction, spilling *and* expiry, in
//!   both tiers, so a granted reservation can never be invalidated. A
//!   promotion that finds only pinned device entries may transiently
//!   overshoot `max_bytes` — the byte bound is a policy target, not a
//!   physical wall, and soundness wins the conflict.
//!
//! With the default churn knobs (`max_bytes = u64::MAX`, no TTL, spill
//! off) none of this machinery can fire and the cache is byte-identical
//! to the v1 insert-only cache — determinism invariant #10, pinned by
//! `tests/prefix_v2_equivalence.rs`.
//!
//! [`PrefixCacheConfig::max_entries`] remains a hard structural bound on
//! the *index*: insertions are skipped (never evicted for) once the
//! device tier holds that many entries, exactly as in v1.
//!
//! The engine inserts only prompts that **missed**: a hit prompt's
//! shareable span is already cached, and its private suffix could never
//! match a future prompt — so for group-structured traffic the cache
//! holds about one entry per distinct prefix, not one per request.
//!
//! The cache keeps each device entry's prefix KV resident in HBM
//! **once**; every hit session references that span (copy-on-evict, see
//! [`SequenceState::seed_from`]) instead of owning a private copy, and
//! serving layers charge [`PrefixCache::resident_bytes`] against device
//! capacity so cached prefixes are never free memory. Host-tier bytes
//! ([`PrefixCache::host_bytes`]) live in host RAM and are accounted
//! separately.
//!
//! ```
//! use veda::{PrefixCache, PrefixCacheConfig};
//! use veda_model::{ModelConfig, TransformerModel};
//!
//! // Build a prefix entry the way the engine does during prefill: run the
//! // shared tokens forward once, recording KV rows and observations.
//! let model = TransformerModel::new(ModelConfig::tiny());
//! let prefix = vec![1, 5, 9, 2];
//! let mut state = model.new_state();
//! let mut scratch = model.new_scratch(prefix.len());
//! let mut observations = Vec::new();
//! for (position, &token) in prefix.iter().enumerate() {
//!     model.forward_with_scratch(&mut state, token, position, &mut scratch);
//!     observations.push(scratch.scores().clone());
//! }
//!
//! let mut cache = PrefixCache::new(PrefixCacheConfig { min_match_tokens: 2, max_entries: 8, ..PrefixCacheConfig::default() });
//! assert!(cache.insert(prefix.clone(), state, observations));
//!
//! // A prompt sharing the prefix matches it token-exactly…
//! assert_eq!(cache.match_len(&[1, 5, 9, 2, 7, 3]), 4);
//! // …the final prompt token is never served from the cache…
//! assert_eq!(cache.match_len(&[1, 5, 9, 2]), 3);
//! // …and prompts diverging before the minimum match length miss.
//! assert_eq!(cache.match_len(&[1, 9, 9, 9, 9]), 0);
//! assert_eq!(cache.stats().entries, 1);
//! ```

use veda_model::{ScoreBuffer, SequenceState};

/// Configuration of the engine's [`PrefixCache`] (see
/// [`crate::EngineBuilder::prefix_cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Minimum token-exact match length worth sharing; shorter matches
    /// are treated as misses. Clamped to at least 1.
    pub min_match_tokens: usize,
    /// Maximum number of cached prefix entries in the device tier. Once
    /// full, further insertions are skipped — the entry *count* bound is
    /// structural (an index-size cap) and is never evicted for; only the
    /// byte bound below drives churn.
    pub max_entries: usize,
    /// Maximum FP16 bytes the cache's entries may keep resident in HBM.
    /// An insertion (or host-tier promotion) that would exceed it evicts
    /// unpinned entries in LRU order first — dropping them, or spilling
    /// them to the host tier when [`PrefixCacheConfig::spill`] is on.
    /// Pinned entries never move, so a promotion may transiently
    /// overshoot this bound when every device entry is pinned.
    /// `u64::MAX` (the standalone default) disables byte-pressure churn
    /// entirely, restoring v1's insert-only behaviour.
    pub max_bytes: u64,
    /// Idle ticks after which an unpinned entry (either tier) expires.
    /// The clock advances via [`PrefixCache::advance_clock`] — virtual
    /// ticks, never wall time. `u64::MAX` (the default) means entries
    /// never expire.
    pub ttl_ticks: u64,
    /// Whether byte-pressure eviction spills victims to the host-memory
    /// tier (promoted back on a later hit, with the fill latency charged
    /// by the serving layer) instead of dropping them. Off by default.
    pub spill: bool,
}

impl Default for PrefixCacheConfig {
    /// Minimum match of 4 tokens, at most 32 entries, no byte bound, no
    /// TTL, spill off — the no-churn configuration that is byte-identical
    /// to the v1 insert-only cache (serving deployments should set
    /// [`PrefixCacheConfig::max_bytes`] and consider a TTL).
    fn default() -> Self {
        Self { min_match_tokens: 4, max_entries: 32, max_bytes: u64::MAX, ttl_ticks: u64::MAX, spill: false }
    }
}

/// Aggregate counters of one [`PrefixCache`] (reported on
/// [`crate::EngineReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Cached prefix entries currently resident in the device tier.
    pub entries: usize,
    /// FP16 bytes the cached prefix KV occupies in HBM — resident once,
    /// referenced by every hit session.
    pub resident_bytes: u64,
    /// Entries currently parked in the host-memory spill tier.
    pub host_entries: usize,
    /// FP16 bytes the host-memory spill tier holds (host RAM, not HBM).
    pub host_bytes: u64,
    /// Submitted prompts that matched a cached prefix.
    pub hits: u64,
    /// Submitted prompts that matched nothing (or matched below the
    /// minimum length).
    pub misses: u64,
    /// Prefix entries inserted.
    pub insertions: u64,
    /// Total prompt tokens served from the cache across all hits — the
    /// prefill forward passes (and on-clock prefill chunks) the engine
    /// skipped.
    pub shared_tokens: u64,
    /// Unpinned entries dropped under byte pressure (spill off).
    pub evictions: u64,
    /// Unpinned entries moved device → host under byte pressure.
    pub spills: u64,
    /// Host-tier entries promoted back to the device on a hit.
    pub fills: u64,
    /// Unpinned entries dropped by TTL expiry (either tier).
    pub expiries: u64,
    /// FP16 bytes moved device → host by spills.
    pub spill_bytes: u64,
    /// FP16 bytes moved host → device by promotions.
    pub fill_bytes: u64,
}

impl PrefixCacheStats {
    /// Hit rate over all lookups, in `[0, 1]`. Guarded: a run whose
    /// entries were inserted and then expired without ever being looked
    /// up has zero lookups, and the rate is defined as `0.0` rather than
    /// `NaN`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Entry-count conservation: every inserted or promoted entry is
    /// either still resident (some tier) or left through exactly one of
    /// eviction/expiry. Property tests assert this closes on every tick.
    pub fn entries_conserved(&self) -> bool {
        self.insertions == (self.entries + self.host_entries) as u64 + self.evictions + self.expiries
    }
}

/// One cached prefix: its tokens, KV rows and observation stream.
#[derive(Debug, Clone)]
struct PrefixEntry {
    /// Stable insertion id — monotone over the cache's lifetime, kept
    /// through spills and promotions. Doubles as the deterministic LRU
    /// tie-breaker and the id stamped onto expiry trace events.
    id: u64,
    /// The prefix token sequence.
    tokens: Vec<usize>,
    /// Per-layer KV rows of the prefix (`cache_len == tokens.len()`).
    state: SequenceState,
    /// Per-token attention-score observations (one [`ScoreBuffer`] per
    /// prefix token, in token order) — replayed into a hit session's
    /// fresh policy stack.
    observations: Vec<ScoreBuffer>,
    /// Times this entry served a hit.
    hits: u64,
    /// Outstanding pins: queued admission discounts plus live seeded
    /// sessions. A pinned entry is immune to eviction, spilling and
    /// expiry.
    pins: u32,
    /// Cache-clock tick of the last touch (insert, hit, promotion or
    /// unpin) — the LRU ordering key.
    last_used: u64,
}

fn entry_bytes(entry: &PrefixEntry) -> u64 {
    entry.state.total_fp16_bytes() as u64
}

/// A held admission pin on one cached entry, returned by
/// [`PrefixCache::pin`]. The serving layer keeps it while a discounted
/// reservation is outstanding and releases it with
/// [`PrefixCache::unpin`]; while held, the entry cannot be evicted,
/// spilled or expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixPin {
    entry: u64,
    matched: usize,
}

impl PrefixPin {
    /// Stable id of the pinned entry.
    pub fn entry_id(&self) -> u64 {
        self.entry
    }

    /// Token-exact match length the pin was taken against. The entry
    /// cannot leave while pinned, so a later lookup is guaranteed to
    /// match at least this many tokens.
    pub fn matched(&self) -> usize {
        self.matched
    }
}

/// Which way a pending prefix transfer moves KV bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixTransferKind {
    /// Device → host: an unpinned entry left HBM under byte pressure.
    Spill,
    /// Host → device: a spilled entry was promoted back on a hit.
    Fill,
}

/// One pending host-link transfer produced by cache churn. The cache is
/// a pure bookkeeping structure — it records the traffic and the owning
/// serving layer drains it (via `Engine::take_prefix_transfers`) to
/// charge its host link and serialize fill latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixTransfer {
    /// Stable id of the entry that moved.
    pub entry: u64,
    /// FP16 bytes crossing the host link.
    pub bytes: u64,
    /// Direction of the move.
    pub kind: PrefixTransferKind,
}

/// One TTL expiry, returned by [`PrefixCache::advance_clock`] so the
/// engine can stamp a trace event per expired entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixExpiry {
    /// Stable id of the expired entry.
    pub entry: u64,
    /// FP16 bytes the entry freed.
    pub bytes: u64,
}

/// The outcome of a successful [`PrefixCache::lookup`]: how many tokens
/// are shared and borrows of the data needed to seed a session. Looking
/// up takes a *seed pin* on the entry (recorded under
/// [`PrefixHit::entry`]); the engine holds it for the session's lifetime
/// and releases it at retire/discard/extract.
pub(crate) struct PrefixHit<'a> {
    /// Shared token count (`>= min_match_tokens`).
    pub matched: usize,
    /// Stable id of the entry that served the hit (now holding one more
    /// pin — the session's seed pin).
    pub entry: u64,
    /// The entry's KV rows (seed the session's [`SequenceState`] from the
    /// first `matched` rows).
    pub state: &'a SequenceState,
    /// The entry's observation stream (replay the first `matched`
    /// buffers).
    pub observations: &'a [ScoreBuffer],
}

/// Token-exact longest-match prefix cache with LRU/TTL churn and an
/// optional host-memory spill tier (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct PrefixCache {
    config: PrefixCacheConfig,
    /// Device tier: entries resident in HBM.
    entries: Vec<PrefixEntry>,
    /// Host tier: entries spilled to host RAM, promoted back on a hit.
    host: Vec<PrefixEntry>,
    /// Next entry id (monotone, never reused).
    next_id: u64,
    /// Virtual cache clock, advanced by the owning layer's tick counter.
    now: u64,
    /// Host-link traffic produced by churn, drained by the serving layer.
    pending: Vec<PrefixTransfer>,
    hits: u64,
    misses: u64,
    insertions: u64,
    shared_tokens: u64,
    evictions: u64,
    spills: u64,
    fills: u64,
    expiries: u64,
    spill_bytes: u64,
    fill_bytes: u64,
}

impl PrefixCache {
    /// Creates an empty cache.
    pub fn new(config: PrefixCacheConfig) -> Self {
        let config = PrefixCacheConfig { min_match_tokens: config.min_match_tokens.max(1), ..config };
        Self {
            config,
            entries: Vec::new(),
            host: Vec::new(),
            next_id: 0,
            now: 0,
            pending: Vec::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
            shared_tokens: 0,
            evictions: 0,
            spills: 0,
            fills: 0,
            expiries: 0,
            spill_bytes: 0,
            fill_bytes: 0,
        }
    }

    /// The configuration (minimum match length clamped to at least 1).
    pub fn config(&self) -> &PrefixCacheConfig {
        &self.config
    }

    /// Number of cached prefixes in the device tier.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries in either tier.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.host.is_empty()
    }

    /// FP16 bytes the cached prefix KV occupies in HBM. Each device
    /// entry's rows are resident **once**; hit sessions reference them
    /// (shared spans) rather than owning copies.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(entry_bytes).sum()
    }

    /// FP16 bytes parked in the host-memory spill tier (host RAM — not
    /// charged against device capacity, but promotions pay to bring them
    /// back).
    pub fn host_bytes(&self) -> u64 {
        self.host.iter().map(entry_bytes).sum()
    }

    /// The cache's virtual clock (last value passed to
    /// [`PrefixCache::advance_clock`]).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Aggregate counters.
    pub fn stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            entries: self.entries.len(),
            resident_bytes: self.resident_bytes(),
            host_entries: self.host.len(),
            host_bytes: self.host_bytes(),
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            shared_tokens: self.shared_tokens,
            evictions: self.evictions,
            spills: self.spills,
            fills: self.fills,
            expiries: self.expiries,
            spill_bytes: self.spill_bytes,
            fill_bytes: self.fill_bytes,
        }
    }

    /// Best `(match_len, entry_id, in_host_tier)` across both tiers for
    /// `prompt`, or `None` below the minimum. Ties on length prefer the
    /// most recently inserted entry (highest id) — with an insert-only
    /// history this reproduces v1's highest-index tie-break exactly —
    /// and the device tier over the host tier at equal `(len, id)`
    /// (unreachable: ids are unique).
    fn best_match(&self, prompt: &[usize]) -> Option<(usize, u64, bool)> {
        let cap = prompt.len().saturating_sub(1);
        let best = self
            .entries
            .iter()
            .map(|e| (e, false))
            .chain(self.host.iter().map(|e| (e, true)))
            .map(|(e, in_host)| (common_prefix_len(&e.tokens, &prompt[..cap]), e.id, in_host))
            .max_by_key(|&(len, id, in_host)| (len, id, !in_host))?;
        if best.0 >= self.config.min_match_tokens {
            Some(best)
        } else {
            None
        }
    }

    /// Longest token-exact match between `prompt` and any cached prefix
    /// (either tier), bounded by `prompt.len() - 1` (the final prompt
    /// token is always recomputed — its logits seed the first decode
    /// step). Returns 0 for matches below the configured minimum.
    /// Read-only: does not touch the hit/miss counters, the LRU order or
    /// the tiers (use it to *estimate*, e.g. for routing affinity).
    pub fn match_len(&self, prompt: &[usize]) -> usize {
        self.best_match(prompt).map_or(0, |(len, _, _)| len)
    }

    /// FP16 bytes a hit on `prompt` would have to promote from the host
    /// tier right now (0 when the best match is device-resident or there
    /// is no match). Admission controllers add this to a queued
    /// request's headroom check so a promotion can never be granted into
    /// capacity that does not exist.
    pub fn fill_bytes(&self, prompt: &[usize]) -> u64 {
        match self.best_match(prompt) {
            Some((_, id, true)) => self.host.iter().find(|e| e.id == id).map_or(0, entry_bytes),
            _ => 0,
        }
    }

    /// Pins the best-matching entry for `prompt` (either tier) and
    /// returns the pin, or `None` when nothing matches at the minimum
    /// length. While the pin is held the entry cannot be evicted,
    /// spilled or expired, so an admission discount taken against
    /// [`PrefixPin::matched`] tokens stays valid until
    /// [`PrefixCache::unpin`]. Does not count a hit or promote — the
    /// submit-time lookup does that.
    pub fn pin(&mut self, prompt: &[usize]) -> Option<PrefixPin> {
        let (matched, id, _) = self.best_match(prompt)?;
        let now = self.now;
        if let Some(entry) = self.entry_mut(id) {
            entry.pins += 1;
            entry.last_used = now;
        }
        Some(PrefixPin { entry: id, matched })
    }

    /// Releases a pin taken by [`PrefixCache::pin`]. The entry's LRU
    /// clock is touched (it was in use until now).
    pub fn unpin(&mut self, pin: PrefixPin) {
        self.unpin_entry(pin.entry);
    }

    /// Releases one pin on entry `id` (used both for admission pins and
    /// for the engine's per-session seed pins). Missing ids are ignored
    /// — a pinned entry cannot leave, so this only happens for callers
    /// replaying stale state.
    pub(crate) fn unpin_entry(&mut self, id: u64) {
        let now = self.now;
        if let Some(entry) = self.entry_mut(id) {
            entry.pins = entry.pins.saturating_sub(1);
            entry.last_used = now;
        }
    }

    fn entry_mut(&mut self, id: u64) -> Option<&mut PrefixEntry> {
        self.entries.iter_mut().chain(self.host.iter_mut()).find(|e| e.id == id)
    }

    /// Looks up the best entry for `prompt`, counting a hit or a miss.
    /// On a hit, the entry is promoted to the device tier if it was
    /// spilled (recording a `Fill` transfer), takes one seed pin for the
    /// hitting session, and the call returns the shared length plus
    /// borrows of the entry's KV rows and observation stream.
    pub(crate) fn lookup(&mut self, prompt: &[usize]) -> Option<PrefixHit<'_>> {
        let best = self.best_match(prompt);
        match best {
            Some((matched, id, in_host)) => {
                self.hits += 1;
                self.shared_tokens += matched as u64;
                if in_host {
                    self.promote(id);
                }
                let now = self.now;
                let entry = self.entries.iter_mut().find(|e| e.id == id)?;
                entry.hits += 1;
                entry.pins += 1;
                entry.last_used = now;
                Some(PrefixHit { matched, entry: id, state: &entry.state, observations: &entry.observations })
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Moves host entry `id` back to the device tier, evicting unpinned
    /// device entries as needed. Promotion always succeeds — when every
    /// device entry is pinned the byte bound is transiently overshot
    /// (soundness beats the policy target; see the module docs).
    fn promote(&mut self, id: u64) {
        let Some(index) = self.host.iter().position(|e| e.id == id) else {
            return;
        };
        let entry = self.host.remove(index);
        let bytes = entry_bytes(&entry);
        // Best-effort room: spill/drop unpinned LRU entries, but promote
        // regardless of the outcome.
        self.make_room(bytes);
        // Keep the device tier's entry-count bound by swapping the LRU
        // unpinned entry out (spill is on — promotions only exist with a
        // host tier), again best-effort.
        while self.entries.len() >= self.config.max_entries {
            if !self.evict_one() {
                break;
            }
        }
        self.fills += 1;
        self.fill_bytes += bytes;
        self.pending.push(PrefixTransfer { entry: entry.id, bytes, kind: PrefixTransferKind::Fill });
        self.entries.push(entry);
    }

    /// Evicts (or spills) the unpinned LRU device entry. Returns `false`
    /// when every device entry is pinned.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.pins == 0)
            .min_by_key(|(_, e)| (e.last_used, e.id))
            .map(|(i, _)| i);
        let Some(index) = victim else {
            return false;
        };
        let entry = self.entries.remove(index);
        let bytes = entry_bytes(&entry);
        if self.config.spill {
            self.spills += 1;
            self.spill_bytes += bytes;
            self.pending.push(PrefixTransfer { entry: entry.id, bytes, kind: PrefixTransferKind::Spill });
            self.host.push(entry);
        } else {
            self.evictions += 1;
        }
        true
    }

    /// Evicts unpinned LRU entries until `incoming` more bytes fit under
    /// the byte bound. Returns whether they now fit.
    fn make_room(&mut self, incoming: u64) -> bool {
        if self.config.max_bytes == u64::MAX {
            return true;
        }
        while self.resident_bytes().saturating_add(incoming) > self.config.max_bytes {
            if !self.evict_one() {
                return false;
            }
        }
        true
    }

    /// Whether eviction *could* make `incoming` bytes fit: only pinned
    /// bytes are immovable.
    fn room_possible(&self, incoming: u64) -> bool {
        let pinned: u64 = self.entries.iter().filter(|e| e.pins > 0).map(entry_bytes).sum();
        pinned.saturating_add(incoming) <= self.config.max_bytes
    }

    /// Whether the cache would accept an insertion of `tokens` right now:
    /// the prefix is at least the minimum match length, no existing entry
    /// (either tier) already covers it, the device tier has entry-count
    /// room, and evicting unpinned entries could free enough bytes for
    /// `projected_bytes` (the candidate entry's estimated KV footprint).
    /// The engine probes this at submit to decide whether a session
    /// should record its prefill observation stream at all.
    pub(crate) fn wants(&self, tokens: &[usize], projected_bytes: u64) -> bool {
        tokens.len() >= self.config.min_match_tokens
            && self.entries.len() < self.config.max_entries
            && self.room_possible(projected_bytes)
            && !self.covers(tokens)
    }

    /// Whether some entry's tokens (either tier) start with the whole of
    /// `tokens`.
    fn covers(&self, tokens: &[usize]) -> bool {
        self.entries
            .iter()
            .chain(self.host.iter())
            .any(|e| e.tokens.len() >= tokens.len() && e.tokens.starts_with(tokens))
    }

    /// Inserts a prefix entry: its token sequence, the [`SequenceState`]
    /// holding exactly those tokens' KV rows, and the per-token
    /// observation stream. Unpinned LRU entries are evicted (dropped, or
    /// spilled to the host tier when [`PrefixCacheConfig::spill`] is on)
    /// to make byte room. Returns `false` (dropping the data) when the
    /// prefix is below the minimum length, already covered by an existing
    /// entry, the device tier is full in entries
    /// ([`PrefixCacheConfig::max_entries`] is a structural bound, never
    /// evicted for), or eviction cannot free enough bytes because the
    /// remaining entries are pinned.
    ///
    /// # Panics
    ///
    /// Panics if `state`'s cache length or `observations`'s length
    /// disagree with `tokens.len()`.
    pub fn insert(
        &mut self,
        tokens: Vec<usize>,
        state: SequenceState,
        observations: Vec<ScoreBuffer>,
    ) -> bool {
        assert_eq!(state.cache_len(), tokens.len(), "prefix entry state/token length mismatch");
        assert_eq!(observations.len(), tokens.len(), "prefix entry observations/token length mismatch");
        let bytes = state.total_fp16_bytes() as u64;
        if !self.wants(&tokens, bytes) || !self.make_room(bytes) {
            return false;
        }
        self.insertions += 1;
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(PrefixEntry {
            id,
            tokens,
            state,
            observations,
            hits: 0,
            pins: 0,
            last_used: self.now,
        });
        true
    }

    /// Advances the cache clock to `now` (monotone; lower values are
    /// clamped) and expires unpinned entries in either tier that have
    /// been idle for [`PrefixCacheConfig::ttl_ticks`] or longer. Returns
    /// one [`PrefixExpiry`] per dropped entry, in deterministic order
    /// (device tier in entry order, then host tier), so the engine can
    /// stamp a trace event for each.
    pub fn advance_clock(&mut self, now: u64) -> Vec<PrefixExpiry> {
        self.now = self.now.max(now);
        let ttl = self.config.ttl_ticks;
        if ttl == u64::MAX {
            return Vec::new();
        }
        let at = self.now;
        let mut expired = Vec::new();
        self.entries.retain(|e| {
            let dead = e.pins == 0 && at.saturating_sub(e.last_used) >= ttl;
            if dead {
                expired.push(PrefixExpiry { entry: e.id, bytes: entry_bytes(e) });
            }
            !dead
        });
        self.host.retain(|e| {
            let dead = e.pins == 0 && at.saturating_sub(e.last_used) >= ttl;
            if dead {
                expired.push(PrefixExpiry { entry: e.id, bytes: entry_bytes(e) });
            }
            !dead
        });
        self.expiries += expired.len() as u64;
        expired
    }

    /// Drains the host-link transfers produced by churn since the last
    /// drain (spills from eviction, fills from promotion), in the order
    /// they happened. The owning serving layer charges them against its
    /// host link; a standalone engine may simply discard them (the
    /// *decision* record is what determinism tests compare).
    pub fn take_transfers(&mut self) -> Vec<PrefixTransfer> {
        std::mem::take(&mut self.pending)
    }
}

/// Length of the longest common prefix of two token slices.
fn common_prefix_len(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_model::{ModelConfig, TransformerModel};

    /// Runs `tokens` through a fresh sequence, returning the state and
    /// per-token observations — exactly what the engine records during
    /// prefill.
    fn materialize(model: &TransformerModel, tokens: &[usize]) -> (SequenceState, Vec<ScoreBuffer>) {
        let mut state = model.new_state();
        let mut scratch = model.new_scratch(tokens.len());
        let mut observations = Vec::with_capacity(tokens.len());
        for (position, &token) in tokens.iter().enumerate() {
            model.forward_with_scratch(&mut state, token, position, &mut scratch);
            observations.push(scratch.scores().clone());
        }
        (state, observations)
    }

    fn cache(min: usize, max: usize) -> PrefixCache {
        PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: min,
            max_entries: max,
            ..PrefixCacheConfig::default()
        })
    }

    fn fill_cache(c: &mut PrefixCache, model: &TransformerModel, tokens: &[usize]) -> bool {
        let (state, obs) = materialize(model, tokens);
        c.insert(tokens.to_vec(), state, obs)
    }

    #[test]
    fn match_is_longest_and_capped_below_full_prompt() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(2, 8);
        let short = vec![1, 2, 3];
        let long = vec![1, 2, 3, 4, 5, 6];
        let (state, obs) = materialize(&model, &short);
        assert!(c.insert(short, state, obs));
        let (state, obs) = materialize(&model, &long);
        assert!(c.insert(long, state, obs));

        assert_eq!(c.match_len(&[1, 2, 3, 4, 5, 6, 7]), 6, "longest entry wins");
        assert_eq!(c.match_len(&[1, 2, 3, 4, 5, 6]), 5, "the last prompt token is recomputed");
        assert_eq!(c.match_len(&[1, 2, 9, 9]), 2, "divergence truncates the match");
        assert_eq!(c.match_len(&[9, 1, 2, 3]), 0, "prefixes anchor at position 0");
        assert_eq!(c.match_len(&[1, 2]), 0, "cap below minimum is a miss");
    }

    #[test]
    fn minimum_match_length_gates_hits() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(4, 8);
        let tokens = vec![1, 2, 3, 4, 5];
        let (state, obs) = materialize(&model, &tokens);
        assert!(c.insert(tokens, state, obs));
        assert_eq!(c.match_len(&[1, 2, 3, 9, 9]), 0, "3 < min_match_tokens");
        assert_eq!(c.match_len(&[1, 2, 3, 4, 9]), 4);
        assert!(c.lookup(&[1, 2, 3, 9, 9]).is_none());
        assert_eq!(c.lookup(&[1, 2, 3, 4, 9]).expect("hit").matched, 4);
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.shared_tokens), (1, 1, 4));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insertions_dedup_and_respect_entry_capacity() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(2, 2);
        let a = vec![1, 2, 3];
        assert!(fill_cache(&mut c, &model, &a));
        // Covered by an existing entry (equal tokens): skipped.
        assert!(!fill_cache(&mut c, &model, &a));
        // A shorter prefix of an existing entry is also covered.
        assert!(!fill_cache(&mut c, &model, &[1, 2]));
        // A *longer* prefix is new information.
        assert!(fill_cache(&mut c, &model, &[1, 2, 3, 4]));
        // Full in entries: the count bound is structural — further
        // inserts are skipped, never evicted for.
        assert!(!fill_cache(&mut c, &model, &[7, 8, 9]));
        let stats = c.stats();
        assert_eq!((stats.entries, stats.insertions, stats.evictions), (2, 2, 0));
        assert!(stats.resident_bytes > 0);
        assert!(stats.entries_conserved());
    }

    #[test]
    fn byte_pressure_evicts_lru_unpinned_entries() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let first = vec![1, 2, 3, 4];
        let (state, obs) = materialize(&model, &first);
        let entry_bytes = state.total_fp16_bytes() as u64;

        // Room for exactly one entry of this size: a second insert
        // evicts the cold first entry (spill off → dropped).
        let mut c = PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: 2,
            max_entries: 8,
            max_bytes: entry_bytes,
            ttl_ticks: u64::MAX,
            spill: false,
        });
        assert!(c.insert(first.clone(), state, obs));
        assert!(fill_cache(&mut c, &model, &[7, 8, 9, 10]));
        let stats = c.stats();
        assert_eq!((stats.entries, stats.insertions, stats.evictions), (1, 2, 1));
        assert!(stats.resident_bytes <= entry_bytes);
        assert_eq!(c.match_len(&[1, 2, 3, 4, 5]), 0, "the evicted entry is gone");
        assert_eq!(c.match_len(&[7, 8, 9, 10, 11]), 4, "the new entry replaced it");
        assert!(stats.entries_conserved());
        assert!(c.take_transfers().is_empty(), "drop-on-evict moves no host-link bytes");
    }

    #[test]
    fn pinned_entries_are_immune_to_eviction() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let first = vec![1, 2, 3, 4];
        let (state, obs) = materialize(&model, &first);
        let entry_bytes = state.total_fp16_bytes() as u64;
        let mut c = PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: 2,
            max_entries: 8,
            max_bytes: entry_bytes,
            ttl_ticks: u64::MAX,
            spill: false,
        });
        assert!(c.insert(first, state, obs));
        let pin = c.pin(&[1, 2, 3, 4, 5]).expect("pin the only entry");
        assert_eq!(pin.matched(), 4);
        // The sole entry is pinned: no victim exists, so the insert is
        // skipped rather than invalidating the pinned reservation.
        assert!(!fill_cache(&mut c, &model, &[7, 8, 9, 10]));
        assert_eq!(c.match_len(&[1, 2, 3, 4, 5]), 4, "the pinned entry survived");
        c.unpin(pin);
        assert!(fill_cache(&mut c, &model, &[7, 8, 9, 10]), "unpinned, it can be evicted again");
        assert_eq!(c.match_len(&[1, 2, 3, 4, 5]), 0);
    }

    #[test]
    fn spill_parks_victims_on_the_host_and_a_hit_promotes_them() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let first = vec![1, 2, 3, 4];
        let (state, obs) = materialize(&model, &first);
        let entry_bytes = state.total_fp16_bytes() as u64;
        let mut c = PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: 2,
            max_entries: 8,
            max_bytes: entry_bytes,
            ttl_ticks: u64::MAX,
            spill: true,
        });
        assert!(c.insert(first, state, obs));
        assert!(fill_cache(&mut c, &model, &[7, 8, 9, 10]));
        let stats = c.stats();
        assert_eq!((stats.entries, stats.host_entries, stats.spills, stats.evictions), (1, 1, 1, 0));
        assert_eq!(stats.spill_bytes, entry_bytes);
        assert_eq!(stats.host_bytes, entry_bytes);
        let transfers = c.take_transfers();
        assert_eq!(transfers.len(), 1);
        assert_eq!((transfers[0].kind, transfers[0].bytes), (PrefixTransferKind::Spill, entry_bytes));

        // The spilled prefix still matches (host tier is searched) and a
        // lookup promotes it back, displacing the now-cold other entry.
        assert_eq!(c.match_len(&[1, 2, 3, 4, 5]), 4);
        assert_eq!(c.fill_bytes(&[1, 2, 3, 4, 5]), entry_bytes, "a hit would promote");
        assert_eq!(c.fill_bytes(&[7, 8, 9, 10, 11]), 0, "device hits promote nothing");
        let hit = c.lookup(&[1, 2, 3, 4, 5]).expect("host-tier hit");
        assert_eq!(hit.matched, 4);
        let seed_pin = hit.entry;
        let stats = c.stats();
        assert_eq!((stats.fills, stats.fill_bytes), (1, entry_bytes));
        assert_eq!((stats.entries, stats.host_entries), (1, 1), "promotion swapped the tiers");
        let transfers = c.take_transfers();
        assert_eq!(transfers.len(), 2, "the displaced entry spilled, the hit entry filled");
        assert_eq!(transfers[0].kind, PrefixTransferKind::Spill);
        assert_eq!(transfers[1].kind, PrefixTransferKind::Fill);
        assert!(c.stats().entries_conserved());
        c.unpin_entry(seed_pin);
    }

    #[test]
    fn ttl_expires_idle_unpinned_entries_deterministically() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: 2,
            max_entries: 8,
            max_bytes: u64::MAX,
            ttl_ticks: 10,
            spill: false,
        });
        assert!(fill_cache(&mut c, &model, &[1, 2, 3, 4]));
        c.advance_clock(5);
        assert!(fill_cache(&mut c, &model, &[7, 8, 9, 10]));
        // Tick 9: nothing has been idle for 10 ticks yet.
        assert!(c.advance_clock(9).is_empty());
        assert_eq!(c.stats().entries, 2);
        // Tick 10: the first entry (last_used = 0) expires; the second
        // (last_used = 5) survives until tick 15.
        let expired = c.advance_clock(10);
        assert_eq!(expired.len(), 1);
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().expiries, 1);
        assert_eq!(c.match_len(&[1, 2, 3, 4, 5]), 0);
        assert_eq!(c.match_len(&[7, 8, 9, 10, 11]), 4);
        // A hit refreshes the survivor's TTL.
        let hit = c.lookup(&[7, 8, 9, 10, 11]).expect("hit");
        let id = hit.entry;
        c.unpin_entry(id);
        assert!(c.advance_clock(15).is_empty(), "the tick-10 touch reset the clock");
        let expired = c.advance_clock(20);
        assert_eq!(expired.len(), 1);
        assert!(c.is_empty());
        assert!(c.stats().entries_conserved());
        // Inserted-then-expired with no lookups after the drop: the hit
        // rate must stay defined (regression for the divide-by-zero).
        let mut idle = PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: 2,
            max_entries: 8,
            max_bytes: u64::MAX,
            ttl_ticks: 1,
            spill: false,
        });
        assert!(fill_cache(&mut idle, &model, &[1, 2, 3]));
        idle.advance_clock(1);
        let stats = idle.stats();
        assert_eq!((stats.entries, stats.expiries, stats.hits + stats.misses), (0, 1, 0));
        assert_eq!(stats.hit_rate(), 0.0, "zero lookups is a defined 0.0, not NaN");
        assert!(stats.hit_rate().is_finite());
    }

    #[test]
    fn pinned_entries_never_expire() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: 2,
            max_entries: 8,
            max_bytes: u64::MAX,
            ttl_ticks: 3,
            spill: false,
        });
        assert!(fill_cache(&mut c, &model, &[1, 2, 3, 4]));
        let pin = c.pin(&[1, 2, 3, 4, 5]).expect("pin");
        assert!(c.advance_clock(100).is_empty(), "pinned entries are immune to TTL");
        c.unpin(pin);
        // The unpin touched the LRU clock, so expiry counts idle time
        // from the release, not the insert.
        assert!(c.advance_clock(102).is_empty());
        assert_eq!(c.advance_clock(103).len(), 1);
    }

    #[test]
    fn below_minimum_prefixes_are_rejected() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(4, 8);
        assert!(!fill_cache(&mut c, &model, &[1, 2]));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn insert_rejects_inconsistent_entries() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let (state, obs) = materialize(&model, &[1, 2, 3]);
        cache(2, 8).insert(vec![1, 2, 3, 4], state, obs);
    }
}

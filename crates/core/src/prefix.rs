//! Shared-prefix KV reuse across sessions: the engine-level prefix cache.
//!
//! Serving workloads at scale are dominated by common system prompts and
//! few-shot templates; recomputing (and re-storing) the identical prefix
//! KV for every session wastes both HBM bytes and prefill cycles. A
//! [`PrefixCache`] stores, per cached prefix, everything a new session
//! needs to *skip* prefilling the shared span while remaining
//! bit-identical to an uncached run:
//!
//! * the per-layer **KV rows** of the prefix (a [`SequenceState`] holding
//!   exactly the prefix tokens — prefill never evicts, so these rows are a
//!   pure function of the token sequence), and
//! * the per-token **attention-score observation stream**
//!   ([`ScoreBuffer`] per prefix token). Eviction policies accumulate
//!   state from prefill observations (H2O's score sums, voting's vote
//!   counts), so a session that skips the shared forward passes must
//!   *replay* the recorded observations into its fresh policy stack —
//!   otherwise its later eviction decisions, and therefore its generated
//!   tokens, would drift from an uncached run.
//!
//! Because RoPE rotates keys by **absolute** position and every prompt
//! places the shared prefix at positions `0..k`, the cached rows are
//! valid for any request whose prompt starts with the same tokens. The
//! observation stream is likewise a deterministic function of the prefix
//! tokens alone.
//!
//! Matching is token-exact longest-prefix, bounded above by
//! `prompt.len() - 1`: the final prompt token is always recomputed, since
//! its forward pass produces the logits the first decode step samples
//! from. Matches shorter than [`PrefixCacheConfig::min_match_tokens`]
//! are ignored (tiny shared spans are not worth the bookkeeping).
//!
//! Entries are insert-only up to [`PrefixCacheConfig::max_entries`] and
//! never evicted within a run: match lengths are therefore monotone
//! non-decreasing over time, which is what lets an admission controller
//! reserve only the *unshared* peak bytes of a known-prefix,
//! eviction-free request (the share it observed can only grow by submit
//! time, and a session that never evicts can never privatize its span —
//! see `veda_serving::admission` for the full soundness argument). The
//! engine inserts only prompts that **missed**: a hit prompt's shareable
//! span is already cached, and its private suffix could never match a
//! future prompt — so for group-structured traffic the cache holds about
//! one entry per distinct prefix, not one per request.
//!
//! The cache itself keeps the prefix KV resident in HBM **once**; every
//! hit session references that span (copy-on-evict, see
//! [`SequenceState::seed_from`]) instead of owning a private copy, and
//! serving layers charge [`PrefixCache::resident_bytes`] against device
//! capacity so cached prefixes are never free memory.
//!
//! ```
//! use veda::{PrefixCache, PrefixCacheConfig};
//! use veda_model::{ModelConfig, TransformerModel};
//!
//! // Build a prefix entry the way the engine does during prefill: run the
//! // shared tokens forward once, recording KV rows and observations.
//! let model = TransformerModel::new(ModelConfig::tiny());
//! let prefix = vec![1, 5, 9, 2];
//! let mut state = model.new_state();
//! let mut scratch = model.new_scratch(prefix.len());
//! let mut observations = Vec::new();
//! for (position, &token) in prefix.iter().enumerate() {
//!     model.forward_with_scratch(&mut state, token, position, &mut scratch);
//!     observations.push(scratch.scores().clone());
//! }
//!
//! let mut cache = PrefixCache::new(PrefixCacheConfig { min_match_tokens: 2, max_entries: 8, ..PrefixCacheConfig::default() });
//! assert!(cache.insert(prefix.clone(), state, observations));
//!
//! // A prompt sharing the prefix matches it token-exactly…
//! assert_eq!(cache.match_len(&[1, 5, 9, 2, 7, 3]), 4);
//! // …the final prompt token is never served from the cache…
//! assert_eq!(cache.match_len(&[1, 5, 9, 2]), 3);
//! // …and prompts diverging before the minimum match length miss.
//! assert_eq!(cache.match_len(&[1, 9, 9, 9, 9]), 0);
//! assert_eq!(cache.stats().entries, 1);
//! ```

use veda_model::{ScoreBuffer, SequenceState};

/// Configuration of the engine's [`PrefixCache`] (see
/// [`crate::EngineBuilder::prefix_cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Minimum token-exact match length worth sharing; shorter matches
    /// are treated as misses. Clamped to at least 1.
    pub min_match_tokens: usize,
    /// Maximum number of cached prefix entries. Once full, further
    /// insertions are skipped (entries are never evicted within a run, so
    /// observed match lengths are monotone — the property admission
    /// controllers rely on to reserve only unshared bytes).
    pub max_entries: usize,
    /// Maximum FP16 bytes the cache's entries may keep resident in HBM;
    /// an insertion that would exceed it is skipped. Entries are never
    /// evicted, so this bound is what lets an operator size device
    /// capacity: a serving deployment should keep `max_bytes` comfortably
    /// below [`veda_mem::HbmConfig::capacity_bytes`] minus the largest
    /// single-request peak, otherwise the (monotone) cache overhead can
    /// permanently crowd out admissions. `u64::MAX` (the standalone
    /// default) leaves only the entry-count bound.
    pub max_bytes: u64,
}

impl Default for PrefixCacheConfig {
    /// Minimum match of 4 tokens, at most 32 entries, no byte bound
    /// (serving deployments should set [`PrefixCacheConfig::max_bytes`]).
    fn default() -> Self {
        Self { min_match_tokens: 4, max_entries: 32, max_bytes: u64::MAX }
    }
}

/// Aggregate counters of one [`PrefixCache`] (reported on
/// [`crate::EngineReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Cached prefix entries currently resident.
    pub entries: usize,
    /// FP16 bytes the cached prefix KV occupies in HBM — resident once,
    /// referenced by every hit session.
    pub resident_bytes: u64,
    /// Submitted prompts that matched a cached prefix.
    pub hits: u64,
    /// Submitted prompts that matched nothing (or matched below the
    /// minimum length).
    pub misses: u64,
    /// Prefix entries inserted.
    pub insertions: u64,
    /// Total prompt tokens served from the cache across all hits — the
    /// prefill forward passes (and on-clock prefill chunks) the engine
    /// skipped.
    pub shared_tokens: u64,
}

impl PrefixCacheStats {
    /// Hit rate over all lookups, in `[0, 1]` (0 when nothing was looked
    /// up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// One cached prefix: its tokens, KV rows and observation stream.
#[derive(Debug, Clone)]
struct PrefixEntry {
    /// The prefix token sequence.
    tokens: Vec<usize>,
    /// Per-layer KV rows of the prefix (`cache_len == tokens.len()`).
    state: SequenceState,
    /// Per-token attention-score observations (one [`ScoreBuffer`] per
    /// prefix token, in token order) — replayed into a hit session's
    /// fresh policy stack.
    observations: Vec<ScoreBuffer>,
    /// Times this entry served a hit.
    hits: u64,
}

/// The outcome of a successful [`PrefixCache::lookup`]: how many tokens
/// are shared and borrows of the data needed to seed a session.
pub(crate) struct PrefixHit<'a> {
    /// Shared token count (`>= min_match_tokens`).
    pub matched: usize,
    /// The entry's KV rows (seed the session's [`SequenceState`] from the
    /// first `matched` rows).
    pub state: &'a SequenceState,
    /// The entry's observation stream (replay the first `matched`
    /// buffers).
    pub observations: &'a [ScoreBuffer],
}

/// Token-exact longest-match prefix cache (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct PrefixCache {
    config: PrefixCacheConfig,
    entries: Vec<PrefixEntry>,
    hits: u64,
    misses: u64,
    insertions: u64,
    shared_tokens: u64,
}

impl PrefixCache {
    /// Creates an empty cache.
    pub fn new(config: PrefixCacheConfig) -> Self {
        let config = PrefixCacheConfig { min_match_tokens: config.min_match_tokens.max(1), ..config };
        Self { config, entries: Vec::new(), hits: 0, misses: 0, insertions: 0, shared_tokens: 0 }
    }

    /// The configuration (minimum match length clamped to at least 1).
    pub fn config(&self) -> &PrefixCacheConfig {
        &self.config
    }

    /// Number of cached prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// FP16 bytes the cached prefix KV occupies in HBM. Each entry's rows
    /// are resident **once**; hit sessions reference them (shared spans)
    /// rather than owning copies.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.state.total_fp16_bytes() as u64).sum()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            entries: self.entries.len(),
            resident_bytes: self.resident_bytes(),
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            shared_tokens: self.shared_tokens,
        }
    }

    /// Longest token-exact match between `prompt` and any cached prefix,
    /// bounded by `prompt.len() - 1` (the final prompt token is always
    /// recomputed — its logits seed the first decode step). Returns 0 for
    /// matches below the configured minimum. Read-only: does not touch
    /// the hit/miss counters (use it to *estimate*, e.g. for admission
    /// reservations).
    pub fn match_len(&self, prompt: &[usize]) -> usize {
        let cap = prompt.len().saturating_sub(1);
        let best =
            self.entries.iter().map(|e| common_prefix_len(&e.tokens, &prompt[..cap])).max().unwrap_or(0);
        if best >= self.config.min_match_tokens {
            best
        } else {
            0
        }
    }

    /// Looks up the best entry for `prompt`, counting a hit or a miss.
    /// On a hit, returns the shared length and borrows of the entry's KV
    /// rows and observation stream.
    pub(crate) fn lookup(&mut self, prompt: &[usize]) -> Option<PrefixHit<'_>> {
        let cap = prompt.len().saturating_sub(1);
        let best = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (common_prefix_len(&e.tokens, &prompt[..cap]), i))
            .max()
            .filter(|&(len, _)| len >= self.config.min_match_tokens);
        match best {
            Some((matched, index)) => {
                self.hits += 1;
                self.shared_tokens += matched as u64;
                let entry = &mut self.entries[index];
                entry.hits += 1;
                Some(PrefixHit { matched, state: &entry.state, observations: &entry.observations })
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether the cache would accept an insertion of `tokens` right now:
    /// the prefix is at least the minimum match length, no existing entry
    /// already covers it, and there is room in both the entry-count and
    /// byte budgets (`projected_bytes` is the candidate entry's estimated
    /// KV footprint). The engine probes this at submit to decide whether
    /// a session should record its prefill observation stream at all.
    pub(crate) fn wants(&self, tokens: &[usize], projected_bytes: u64) -> bool {
        tokens.len() >= self.config.min_match_tokens
            && self.entries.len() < self.config.max_entries
            && self.resident_bytes().saturating_add(projected_bytes) <= self.config.max_bytes
            && !self.covers(tokens)
    }

    /// Whether some entry's tokens start with the whole of `tokens`.
    fn covers(&self, tokens: &[usize]) -> bool {
        self.entries.iter().any(|e| e.tokens.len() >= tokens.len() && e.tokens.starts_with(tokens))
    }

    /// Inserts a prefix entry: its token sequence, the [`SequenceState`]
    /// holding exactly those tokens' KV rows, and the per-token
    /// observation stream. Returns `false` (dropping the data) when the
    /// prefix is below the minimum length, already covered by an existing
    /// entry, or the cache is full in entries ([`PrefixCacheConfig::max_entries`])
    /// or bytes ([`PrefixCacheConfig::max_bytes`]) — entries are never
    /// evicted within a run (see the [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if `state`'s cache length or `observations`'s length
    /// disagree with `tokens.len()`.
    pub fn insert(
        &mut self,
        tokens: Vec<usize>,
        state: SequenceState,
        observations: Vec<ScoreBuffer>,
    ) -> bool {
        assert_eq!(state.cache_len(), tokens.len(), "prefix entry state/token length mismatch");
        assert_eq!(observations.len(), tokens.len(), "prefix entry observations/token length mismatch");
        if !self.wants(&tokens, state.total_fp16_bytes() as u64) {
            return false;
        }
        self.insertions += 1;
        self.entries.push(PrefixEntry { tokens, state, observations, hits: 0 });
        true
    }
}

/// Length of the longest common prefix of two token slices.
fn common_prefix_len(a: &[usize], b: &[usize]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_model::{ModelConfig, TransformerModel};

    /// Runs `tokens` through a fresh sequence, returning the state and
    /// per-token observations — exactly what the engine records during
    /// prefill.
    fn materialize(model: &TransformerModel, tokens: &[usize]) -> (SequenceState, Vec<ScoreBuffer>) {
        let mut state = model.new_state();
        let mut scratch = model.new_scratch(tokens.len());
        let mut observations = Vec::with_capacity(tokens.len());
        for (position, &token) in tokens.iter().enumerate() {
            model.forward_with_scratch(&mut state, token, position, &mut scratch);
            observations.push(scratch.scores().clone());
        }
        (state, observations)
    }

    fn cache(min: usize, max: usize) -> PrefixCache {
        PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: min,
            max_entries: max,
            ..PrefixCacheConfig::default()
        })
    }

    #[test]
    fn match_is_longest_and_capped_below_full_prompt() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(2, 8);
        let short = vec![1, 2, 3];
        let long = vec![1, 2, 3, 4, 5, 6];
        let (state, obs) = materialize(&model, &short);
        assert!(c.insert(short, state, obs));
        let (state, obs) = materialize(&model, &long);
        assert!(c.insert(long, state, obs));

        assert_eq!(c.match_len(&[1, 2, 3, 4, 5, 6, 7]), 6, "longest entry wins");
        assert_eq!(c.match_len(&[1, 2, 3, 4, 5, 6]), 5, "the last prompt token is recomputed");
        assert_eq!(c.match_len(&[1, 2, 9, 9]), 2, "divergence truncates the match");
        assert_eq!(c.match_len(&[9, 1, 2, 3]), 0, "prefixes anchor at position 0");
        assert_eq!(c.match_len(&[1, 2]), 0, "cap below minimum is a miss");
    }

    #[test]
    fn minimum_match_length_gates_hits() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(4, 8);
        let tokens = vec![1, 2, 3, 4, 5];
        let (state, obs) = materialize(&model, &tokens);
        assert!(c.insert(tokens, state, obs));
        assert_eq!(c.match_len(&[1, 2, 3, 9, 9]), 0, "3 < min_match_tokens");
        assert_eq!(c.match_len(&[1, 2, 3, 4, 9]), 4);
        assert!(c.lookup(&[1, 2, 3, 9, 9]).is_none());
        assert_eq!(c.lookup(&[1, 2, 3, 4, 9]).expect("hit").matched, 4);
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.shared_tokens), (1, 1, 4));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insertions_dedup_and_respect_capacity() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(2, 2);
        let a = vec![1, 2, 3];
        let (state, obs) = materialize(&model, &a);
        assert!(c.insert(a.clone(), state, obs));
        // Covered by an existing entry (equal tokens): skipped.
        let (state, obs) = materialize(&model, &a);
        assert!(!c.insert(a.clone(), state, obs));
        // A shorter prefix of an existing entry is also covered.
        let shorter = vec![1, 2];
        let (state, obs) = materialize(&model, &shorter);
        assert!(!c.insert(shorter, state, obs));
        // A *longer* prefix is new information.
        let longer = vec![1, 2, 3, 4];
        let (state, obs) = materialize(&model, &longer);
        assert!(c.insert(longer, state, obs));
        // Full: further inserts are skipped, never evicted.
        let other = vec![7, 8, 9];
        let (state, obs) = materialize(&model, &other);
        assert!(!c.insert(other, state, obs));
        let stats = c.stats();
        assert_eq!((stats.entries, stats.insertions), (2, 2));
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn byte_bound_caps_resident_entries() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let first = vec![1, 2, 3, 4];
        let (state, obs) = materialize(&model, &first);
        let entry_bytes = state.total_fp16_bytes() as u64;

        // Room for exactly one entry of this size.
        let mut c = PrefixCache::new(PrefixCacheConfig {
            min_match_tokens: 2,
            max_entries: 8,
            max_bytes: entry_bytes,
        });
        assert!(c.insert(first, state, obs));
        let second = vec![7, 8, 9, 10];
        let (state, obs) = materialize(&model, &second);
        assert!(!c.insert(second, state, obs), "byte bound must reject further entries");
        let stats = c.stats();
        assert_eq!((stats.entries, stats.insertions), (1, 1));
        assert!(stats.resident_bytes <= entry_bytes);
    }

    #[test]
    fn below_minimum_prefixes_are_rejected() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let mut c = cache(4, 8);
        let tiny = vec![1, 2];
        let (state, obs) = materialize(&model, &tiny);
        assert!(!c.insert(tiny, state, obs));
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn insert_rejects_inconsistent_entries() {
        let model = TransformerModel::new(ModelConfig::tiny());
        let (state, obs) = materialize(&model, &[1, 2, 3]);
        cache(2, 8).insert(vec![1, 2, 3, 4], state, obs);
    }
}

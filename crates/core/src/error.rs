//! Structured configuration errors shared by the builders and the engine.

/// Error building an [`crate::Engine`] / [`crate::Simulation`] or
/// submitting a [`crate::Request`].
///
/// Each variant carries a human-readable detail message; match on the
/// variant to branch programmatically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The functional model configuration is internally inconsistent.
    InvalidModel(String),
    /// The derived accelerator architecture is internally inconsistent.
    InvalidArch(String),
    /// The cache budget is unusable (zero, or a ratio outside `(0, 1]`).
    InvalidBudget(String),
    /// A submitted request is unusable (empty prompt, out-of-vocabulary
    /// tokens, …).
    InvalidRequest(String),
}

impl BuildError {
    /// The detail message, without the variant prefix.
    pub fn detail(&self) -> &str {
        match self {
            BuildError::InvalidModel(s)
            | BuildError::InvalidArch(s)
            | BuildError::InvalidBudget(s)
            | BuildError::InvalidRequest(s) => s,
        }
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::InvalidModel(s) => write!(f, "invalid model configuration: {s}"),
            BuildError::InvalidArch(s) => write!(f, "invalid architecture configuration: {s}"),
            BuildError::InvalidBudget(s) => write!(f, "invalid cache budget: {s}"),
            BuildError::InvalidRequest(s) => write!(f, "invalid request: {s}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_variant_context_and_detail() {
        let e = BuildError::InvalidBudget("fixed budget must be positive".into());
        let msg = e.to_string();
        assert!(msg.contains("budget"), "{msg}");
        assert!(msg.contains("positive"), "{msg}");
        assert_eq!(e.detail(), "fixed budget must be positive");
    }

    #[test]
    fn variants_are_distinguishable() {
        assert_ne!(BuildError::InvalidModel("x".into()), BuildError::InvalidArch("x".into()));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&BuildError::InvalidRequest("empty prompt".into()));
    }
}

//! Property test for the chunked-prefill compatibility guarantee: for
//! random prompts, budgets, policies, chunk sizes and tick token budgets,
//! an engine consuming the prompt in on-clock chunks generates
//! bit-identical tokens and performs bit-identical evictions to the
//! instant-prefill engine (`prefill_chunk = usize::MAX`), which is itself
//! pinned byte-identical to the pre-redesign submit-time prefill.

use proptest::prelude::*;
use veda::{Budget, Engine, EngineBuilder, Request, SessionPhase, SimulationReport};
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

/// Deterministic pseudo-random prompt derived from a seed (the shim's
/// strategies drive the parameters; the content just has to vary).
fn prompt(len: usize, seed: u64) -> Vec<usize> {
    (0..len).map(|i| ((i as u64 * 31 + seed * 17 + 7) % 60 + 1) as usize).collect()
}

fn budget(selector: usize, seed: u64) -> Budget {
    match selector {
        0 => Budget::Unbounded,
        1 => Budget::Fixed((seed % 14 + 1) as usize),
        _ => Budget::Ratio((seed % 9 + 1) as f64 / 10.0),
    }
}

fn run(mut engine: Engine, request: Request) -> SimulationReport {
    let session = engine.submit(request).expect("valid request");
    while engine.is_active(session) {
        engine.step();
    }
    assert_eq!(engine.session_phase(session), Some(SessionPhase::Finished));
    engine.take_report(session).expect("finished session has a report")
}

proptest! {
    #[test]
    fn chunked_prefill_is_bit_identical_to_instant(
        prompt_len in 1usize..40,
        max_new in 0usize..12,
        chunk in 1usize..24,
        tick_budget in 1usize..32,
        policy_idx in 0usize..6,
        budget_sel in 0usize..3,
        seed in 0u64..1000,
    ) {
        let policy = PolicyKind::ALL[policy_idx];
        let request = || Request::new(prompt(prompt_len, seed), max_new)
            .policy(policy)
            .budget(budget(budget_sel, seed));

        let instant = EngineBuilder::new().model(ModelConfig::tiny()).build().expect("valid");
        let reference = run(instant, request());

        let chunked_engine = EngineBuilder::new()
            .model(ModelConfig::tiny())
            .prefill_chunk(chunk)
            .tick_token_budget(tick_budget)
            .build()
            .expect("valid");
        let chunked = run(chunked_engine, request());

        prop_assert_eq!(
            &chunked.generated, &reference.generated,
            "chunk {} / tick budget {} changed the token stream", chunk, tick_budget
        );
        prop_assert_eq!(
            chunked.evictions, reference.evictions,
            "chunk {} / tick budget {} changed the eviction count", chunk, tick_budget
        );
        // Decode-side accounting is prefill-agnostic, so the whole
        // per-request report must in fact match.
        prop_assert_eq!(&chunked, &reference);
    }
}

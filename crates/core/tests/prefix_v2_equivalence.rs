//! Differential soundness suite for the v2 (churn-capable) prefix
//! cache, pinning determinism invariant #10:
//!
//! * **v1 equivalence** — with the unbounded default configuration
//!   (`max_bytes = u64::MAX`, no TTL, spill off) the v2 cache makes
//!   byte-identical decisions to the v1 insert-only cache. The v1
//!   semantics are reconstructed here as an independent reference model
//!   and compared decision-by-decision (match length, hit/miss,
//!   insertion, entry count) after every submit, and the churn counters
//!   are asserted to stay exactly zero — the churn machinery must be
//!   unreachable under the defaults.
//! * **churn neutrality** — under *any* churn configuration (byte
//!   pressure, TTL expiry, host spill on or off), per-request token
//!   streams and reports are bit-identical to the same engine with the
//!   cache disabled, across eviction policies, prefill chunk sizes and
//!   decode thread counts. Sessions copy their seeded rows, so evicting
//!   or spilling an entry may only change *future* hit rates, never any
//!   in-flight session's tokens.
//! * **thread invariance** — a churny configuration produces the
//!   identical `EngineReport` (including spill/fill/expiry counters) on
//!   1 and 2 decode threads: all churn is resolved on the coordinator.

use proptest::prelude::*;
use veda::{Budget, Engine, EngineBuilder, PrefixCacheConfig, Request, SimulationReport};
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

/// Deterministic pseudo-random token sequence derived from a seed.
fn tokens(len: usize, seed: u64) -> Vec<usize> {
    (0..len).map(|i| ((i as u64 * 29 + seed * 13 + 5) % 60 + 1) as usize).collect()
}

/// A wave of requests over `groups` shared prefixes (see
/// `prefix_equivalence.rs`, whose construction this mirrors).
fn wave(
    n_requests: usize,
    groups: usize,
    prefix_len: usize,
    suffix_len: usize,
    seed: u64,
    policy_a: PolicyKind,
    policy_b: PolicyKind,
) -> Vec<Request> {
    (0..n_requests)
        .map(|i| {
            let group = i % groups;
            let mut prompt = tokens(prefix_len, seed * 100 + group as u64);
            prompt.extend(tokens(suffix_len + i % 3, seed * 1000 + i as u64));
            let policy = if i % 2 == 0 { policy_a } else { policy_b };
            let budget = match i % 3 {
                0 => Budget::Unbounded,
                1 => Budget::Fixed((seed % 12 + 4) as usize),
                _ => Budget::Ratio((seed % 7 + 3) as f64 / 10.0),
            };
            Request::new(prompt, 3 + i % 5).policy(policy).budget(budget)
        })
        .collect()
}

fn builder(chunk: usize, threads: usize) -> EngineBuilder {
    let mut builder = EngineBuilder::new().model(ModelConfig::tiny()).decode_threads(threads);
    if chunk > 0 {
        builder = builder.prefill_chunk(chunk);
    }
    builder
}

/// Two-stage run (mirrors `prefix_equivalence.rs`) that additionally
/// advances the prefix TTL clock by one tick per executed step, so a
/// finite `ttl_ticks` actually expires idle entries mid-run. The clock
/// schedule depends only on the step schedule, which is identical for
/// every engine the tests compare.
fn run(mut engine: Engine, requests: Vec<Request>, stage1: usize) -> (Vec<SimulationReport>, u64) {
    let mut sessions = Vec::with_capacity(requests.len());
    let mut tick = 0u64;
    for (i, request) in requests.into_iter().enumerate() {
        if i == stage1 {
            while engine.active_sessions() > 0 {
                tick += 1;
                engine.advance_prefix_clock(tick);
                engine.step();
            }
        }
        sessions.push(engine.submit(request).expect("valid request"));
    }
    while engine.active_sessions() > 0 {
        tick += 1;
        engine.advance_prefix_clock(tick);
        engine.step();
    }
    let hits = engine.prefix_cache_stats().hits;
    let reports = sessions.into_iter().map(|s| engine.take_report(s).expect("finished session")).collect();
    (reports, hits)
}

/// Independent reconstruction of the v1 insert-only cache's decision
/// procedure: longest token-exact match capped one short of the prompt,
/// a minimum-match gate, an entry-count cap, no eviction ever. Only
/// decisions are modelled (token sequences, not KV rows) — the point is
/// that an unbounded v2 cache must agree with this model exactly.
struct RefV1Cache {
    min_match: usize,
    max_entries: usize,
    entries: Vec<Vec<usize>>,
}

/// What the reference model decided for one submitted prompt.
#[derive(Debug, PartialEq, Eq)]
struct RefDecision {
    /// Shared tokens on a hit; 0 on a miss.
    matched: usize,
    /// Whether the prompt was inserted as a new entry.
    inserted: bool,
}

impl RefV1Cache {
    fn new(min_match: usize, max_entries: usize) -> Self {
        Self { min_match, max_entries, entries: Vec::new() }
    }

    fn common_prefix(a: &[usize], b: &[usize]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    /// v1 `match_len`: longest match over all entries, capped at
    /// `prompt.len() - 1`, zero below the minimum.
    fn match_len(&self, prompt: &[usize]) -> usize {
        let cap = prompt.len().saturating_sub(1);
        let best = self.entries.iter().map(|e| Self::common_prefix(e, &prompt[..cap])).max().unwrap_or(0);
        if best >= self.min_match {
            best
        } else {
            0
        }
    }

    /// v1 submit: a hit seeds (and never inserts — the session records
    /// no observations); a miss inserts iff the prompt is long enough,
    /// the entry table has room and no entry already covers the prompt.
    fn submit(&mut self, prompt: &[usize]) -> RefDecision {
        let matched = self.match_len(prompt);
        if matched > 0 {
            return RefDecision { matched, inserted: false };
        }
        let covered = self.entries.iter().any(|e| e.len() >= prompt.len() && e.starts_with(prompt));
        let inserted = prompt.len() >= self.min_match && self.entries.len() < self.max_entries && !covered;
        if inserted {
            self.entries.push(prompt.to_vec());
        }
        RefDecision { matched: 0, inserted }
    }
}

proptest! {
    /// Invariant #10, decision half: an unbounded/no-TTL/no-spill v2
    /// cache agrees with the v1 reference model on every match length,
    /// every hit/miss and every insertion, submit by submit — and its
    /// churn counters stay zero, proving the churn machinery is
    /// unreachable under the defaults.
    #[test]
    fn unbounded_v2_is_decision_identical_to_v1_reference(
        n_requests in 4usize..12,
        groups in 1usize..4,
        prefix_len in 5usize..18,
        suffix_len in 1usize..6,
        max_entries in 2usize..6,
        seed in 0u64..1000,
    ) {
        let mut engine = builder(0, 1)
            .prefix_cache(PrefixCacheConfig {
                min_match_tokens: 4,
                max_entries,
                ..PrefixCacheConfig::default()
            })
            .build()
            .expect("valid");
        let mut reference = RefV1Cache::new(4, max_entries);
        let requests = wave(n_requests, groups, prefix_len, suffix_len, seed,
                            PolicyKind::Voting, PolicyKind::H2o);

        for (i, request) in requests.into_iter().enumerate() {
            let prompt = request.prompt.clone();
            prop_assert_eq!(
                engine.prefix_match_len(&prompt),
                reference.match_len(&prompt),
                "request {}: match estimate diverged from v1 (seed {})", i, seed
            );
            let before = engine.prefix_cache_stats();
            let expected = reference.submit(&prompt);
            // Instant prefill: the lookup and any insertion happen
            // synchronously inside submit.
            engine.submit(request).expect("valid request");
            let after = engine.prefix_cache_stats();
            let actual = RefDecision {
                matched: (after.shared_tokens - before.shared_tokens) as usize,
                inserted: after.insertions > before.insertions,
            };
            prop_assert_eq!(&actual, &expected, "request {}: decision diverged (seed {})", i, seed);
            prop_assert_eq!(
                (after.hits - before.hits) == 1,
                expected.matched > 0,
                "request {}: hit accounting diverged (seed {})", i, seed
            );
            prop_assert_eq!(
                after.entries, reference.entries.len(),
                "request {}: entry count diverged (seed {})", i, seed
            );
        }
        while engine.active_sessions() > 0 {
            engine.step();
        }
        let stats = engine.prefix_cache_stats();
        prop_assert_eq!(
            (stats.evictions, stats.spills, stats.fills, stats.expiries, stats.host_entries),
            (0, 0, 0, 0, 0),
            "the unbounded default configuration must never churn (seed {})", seed
        );
        prop_assert!(stats.entries_conserved(), "conservation must close (seed {})", seed);
    }

    /// Churn neutrality: under byte pressure, TTL expiry and spill, the
    /// engine's per-request token streams and reports stay bit-identical
    /// to the cache-disabled engine — across 6 eviction policies, chunk
    /// sizes (instant + finite) and decode threads 1/2. Churn may move
    /// cache bytes and change hit rates; it may never touch tokens.
    #[test]
    fn churny_cache_is_token_identical_to_disabled(
        n_requests in 2usize..8,
        groups in 1usize..3,
        prefix_len in 6usize..20,
        suffix_len in 1usize..8,
        chunk_sel in 0usize..3,
        threads in 1usize..3,
        policy_a_idx in 0usize..6,
        policy_b_idx in 0usize..6,
        max_kb in 1u64..6,
        ttl in 2u64..30,
        spill_sel in 0usize..2,
        seed in 0u64..500,
    ) {
        let chunk = [0usize, 3, 8][chunk_sel];
        let policy_a = PolicyKind::ALL[policy_a_idx];
        let policy_b = PolicyKind::ALL[policy_b_idx];
        let requests = || wave(n_requests, groups, prefix_len, suffix_len, seed, policy_a, policy_b);
        let stage1 = groups.max(n_requests / 2);
        let churny = PrefixCacheConfig {
            min_match_tokens: 4,
            max_entries: 16,
            max_bytes: max_kb << 10,
            ttl_ticks: ttl,
            spill: spill_sel == 1,
        };

        let disabled = builder(chunk, threads).build().expect("valid");
        let (reference, no_hits) = run(disabled, requests(), stage1);
        prop_assert_eq!(no_hits, 0, "a disabled cache cannot hit");

        let enabled = builder(chunk, threads).prefix_cache(churny).build().expect("valid");
        let (cached, _) = run(enabled, requests(), stage1);

        for (i, (c, r)) in cached.iter().zip(&reference).enumerate() {
            prop_assert_eq!(
                &c.generated, &r.generated,
                "request {}: churn changed the token stream (chunk {}, threads {}, cfg {:?})",
                i, chunk, threads, churny
            );
            prop_assert_eq!(
                c, r,
                "request {}: churn changed the report (chunk {}, threads {}, cfg {:?})",
                i, chunk, threads, churny
            );
        }
    }

    /// Invariant #10, thread half: a churny configuration — byte
    /// pressure, a finite TTL and spill enabled — produces the identical
    /// `EngineReport` (prefix spill/fill/expiry counters included) on 1
    /// and 2 decode threads.
    #[test]
    fn churny_cache_report_is_thread_invariant(
        n_requests in 2usize..6,
        prefix_len in 6usize..16,
        chunk in 1usize..10,
        max_kb in 1u64..4,
        ttl in 2u64..20,
        seed in 0u64..200,
    ) {
        let churny = PrefixCacheConfig {
            min_match_tokens: 4,
            max_entries: 8,
            max_bytes: max_kb << 10,
            ttl_ticks: ttl,
            spill: true,
        };
        let requests = || wave(n_requests, 1, prefix_len, 2, seed, PolicyKind::Voting, PolicyKind::H2o);
        let run_threads = |threads: usize| {
            let mut engine = builder(chunk, threads).prefix_cache(churny).build().expect("valid");
            for request in requests() {
                engine.submit(request).expect("valid request");
            }
            let mut tick = 0u64;
            while engine.active_sessions() > 0 {
                tick += 1;
                engine.advance_prefix_clock(tick);
                engine.step();
            }
            engine.run_to_completion()
        };
        let serial = run_threads(1);
        let parallel = run_threads(2);
        prop_assert_eq!(parallel, serial, "decode_threads(2) changed a churny prefix run");
    }
}

//! Property tests for the shared-prefix cache's correctness bar: for
//! random request waves that share prompt prefixes, an engine with the
//! prefix cache **enabled** generates bit-identical per-request token
//! streams, eviction counts and reports to the same engine with the cache
//! **disabled** — across eviction policies, prefill chunk sizes (instant
//! and finite) and decode thread counts. Sharing KV across sessions may
//! only change where bytes live and when prefill work lands on the clock,
//! never which tokens a request generates.

use proptest::prelude::*;
use veda::{Budget, Engine, EngineBuilder, PrefixCacheConfig, Request, SimulationReport};
use veda_eviction::PolicyKind;
use veda_model::ModelConfig;

/// Deterministic pseudo-random token sequence derived from a seed.
fn tokens(len: usize, seed: u64) -> Vec<usize> {
    (0..len).map(|i| ((i as u64 * 29 + seed * 13 + 5) % 60 + 1) as usize).collect()
}

/// A wave of requests over `groups` shared prefixes: request `i` prepends
/// its group's prefix to a private suffix, so within a group every prompt
/// shares the leading `prefix_len` tokens. Policies and budgets rotate so
/// the sharing crosses policy stacks.
fn wave(
    n_requests: usize,
    groups: usize,
    prefix_len: usize,
    suffix_len: usize,
    seed: u64,
    policy_a: PolicyKind,
    policy_b: PolicyKind,
) -> Vec<Request> {
    (0..n_requests)
        .map(|i| {
            let group = i % groups;
            let mut prompt = tokens(prefix_len, seed * 100 + group as u64);
            prompt.extend(tokens(suffix_len + i % 3, seed * 1000 + i as u64));
            let policy = if i % 2 == 0 { policy_a } else { policy_b };
            let budget = match i % 3 {
                0 => Budget::Unbounded,
                1 => Budget::Fixed((seed % 12 + 4) as usize),
                _ => Budget::Ratio((seed % 7 + 3) as f64 / 10.0),
            };
            Request::new(prompt, 3 + i % 5).policy(policy).budget(budget)
        })
        .collect()
}

/// Submits the wave in two stages (the first `stage1` requests, drained
/// to completion, then the rest), so later submits can hit entries the
/// first stage inserted even under chunked prefill, where insertion
/// happens only when a prompt *completes* on the clock. Returns the
/// per-request reports in submission order plus the engine's prefix-hit
/// count. The schedule is identical for cached and uncached engines, so
/// the comparison isolates the cache.
fn run(mut engine: Engine, requests: Vec<Request>, stage1: usize) -> (Vec<SimulationReport>, u64) {
    let mut sessions = Vec::with_capacity(requests.len());
    for (i, request) in requests.into_iter().enumerate() {
        if i == stage1 {
            while engine.active_sessions() > 0 {
                engine.step();
            }
        }
        sessions.push(engine.submit(request).expect("valid request"));
    }
    while engine.active_sessions() > 0 {
        engine.step();
    }
    let hits = engine.prefix_cache_stats().hits;
    let reports = sessions.into_iter().map(|s| engine.take_report(s).expect("finished session")).collect();
    (reports, hits)
}

fn builder(chunk: usize, threads: usize) -> EngineBuilder {
    let mut builder = EngineBuilder::new().model(ModelConfig::tiny()).decode_threads(threads);
    if chunk > 0 {
        builder = builder.prefill_chunk(chunk);
    }
    builder
}

proptest! {
    /// The acceptance-criteria sweep: cached vs uncached token identity
    /// over ≥2 policies × ≥2 chunk sizes (instant + finite) × threads 1/2.
    #[test]
    fn prefix_cache_is_token_identical_to_disabled(
        n_requests in 2usize..8,
        groups in 1usize..3,
        prefix_len in 6usize..20,
        suffix_len in 1usize..8,
        chunk_sel in 0usize..3,
        threads in 1usize..3,
        policy_a_idx in 0usize..6,
        policy_b_idx in 0usize..6,
        seed in 0u64..500,
    ) {
        // chunk 0 = instant prefill; 3 / 8 = finite chunked prefill.
        let chunk = [0usize, 3, 8][chunk_sel];
        let policy_a = PolicyKind::ALL[policy_a_idx];
        let policy_b = PolicyKind::ALL[policy_b_idx];
        let requests = || wave(n_requests, groups, prefix_len, suffix_len, seed, policy_a, policy_b);
        // Stage 1 covers every group, so every second-stage request finds
        // its group's prefix cached.
        let stage1 = groups.max(n_requests / 2);

        let disabled = builder(chunk, threads).build().expect("valid");
        let (reference, no_hits) = run(disabled, requests(), stage1);
        prop_assert_eq!(no_hits, 0, "a disabled cache cannot hit");

        let enabled = builder(chunk, threads)
            .prefix_cache(PrefixCacheConfig { min_match_tokens: 4, max_entries: 16, ..PrefixCacheConfig::default() })
            .build()
            .expect("valid");
        let (cached, hits) = run(enabled, requests(), stage1);
        if n_requests > stage1 {
            prop_assert!(hits > 0, "second-stage prompts must share their group's prefix");
        }

        for (i, (c, r)) in cached.iter().zip(&reference).enumerate() {
            prop_assert_eq!(
                &c.generated, &r.generated,
                "request {}: prefix sharing changed the token stream (chunk {}, threads {})",
                i, chunk, threads
            );
            prop_assert_eq!(
                c, r,
                "request {}: prefix sharing changed the report (chunk {}, threads {})",
                i, chunk, threads
            );
        }
    }

    /// Thread-count invariance *of the cache itself*: hit counts, entry
    /// counts and shared-token totals are resolved on the coordinator, so
    /// any thread count produces the identical EngineReport — including
    /// the prefix stats — for the same wave.
    #[test]
    fn prefix_cache_stats_are_thread_invariant(
        n_requests in 2usize..6,
        prefix_len in 6usize..16,
        chunk in 1usize..10,
        seed in 0u64..200,
    ) {
        let requests = || wave(n_requests, 1, prefix_len, 2, seed, PolicyKind::Voting, PolicyKind::H2o);
        let run_threads = |threads: usize| {
            let mut engine = builder(chunk, threads)
                .prefix_cache(PrefixCacheConfig { min_match_tokens: 4, max_entries: 16, ..PrefixCacheConfig::default() })
                .build()
                .expect("valid");
            for request in requests() {
                engine.submit(request).expect("valid request");
            }
            engine.run_to_completion()
        };
        let serial = run_threads(1);
        let parallel = run_threads(2);
        prop_assert_eq!(parallel, serial, "decode_threads(2) changed a prefix-cache run");
    }
}

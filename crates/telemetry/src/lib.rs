//! Deterministic tracing + metrics plane for the VEDA serving stack.
//!
//! Every layer of the stack — `Engine`, `Shard`, `Server`, `Cluster` —
//! can emit typed [`TraceEvent`]s into an installed [`TraceSink`]. The
//! plane is strictly observation-only:
//!
//! * **Zero-cost when absent.** With no sink installed nothing is
//!   allocated, recorded, or branched on beyond one `Option` check;
//!   every report and token stream is byte-identical to a build without
//!   the plane.
//! * **Deterministic when present.** All emission happens on the
//!   coordinator thread of the virtual-clock simulation, so the same
//!   seed produces the same event stream — and therefore a byte-identical
//!   [Chrome-trace file](chrome_trace_json) — regardless of decode
//!   thread count or shard layout. This is determinism invariant #8 in
//!   `docs/ARCHITECTURE.md`.
//!
//! On top of the raw event stream the crate provides:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed [`Log2Histogram`]
//!   buckets with a deterministic JSON rendering.
//! * [`nearest_rank`] / [`summarize`] — the single, total (never
//!   panicking) nearest-rank percentile implementation shared by every
//!   report type in the workspace.
//! * [`StageWaterfall`] — a per-request latency decomposition
//!   (queueing / prefill / decode / swap wait / migration wait) whose
//!   stages provably sum to the end-to-end latency.
//! * [`chrome_trace_json`] — a Perfetto / `chrome://tracing` loadable
//!   exporter: one process track per shard, one thread track per
//!   request, spans keyed on the virtual clock.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod event;
pub mod json;
mod metrics;
mod waterfall;

pub use chrome::chrome_trace_json;
pub use event::{RecordingSink, SinkHandle, TraceEvent, TraceEventKind, TraceSink, Tracer};
pub use metrics::{nearest_rank, summarize, Log2Histogram, MetricsRegistry, SampleSummary};
pub use waterfall::StageWaterfall;

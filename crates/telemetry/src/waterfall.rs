//! Per-request latency waterfall: where each tick of end-to-end latency
//! went.

/// A completed request's end-to-end latency split into disjoint stages.
///
/// The stages partition the closed interval from submission to
/// completion, so they sum exactly to the end-to-end latency
/// ([`StageWaterfall::e2e`]) — pinned by the conservation property
/// test. Swap and migration waits are carved out of whichever of
/// prefill / decode they interrupted, so "prefill" and "decode" here
/// mean *on-device* time only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageWaterfall {
    /// Ticks from submission to admission (time in the wait queue).
    pub queueing: u64,
    /// On-device ticks from admission to the first generated token.
    pub prefill: u64,
    /// On-device ticks from the first token to completion.
    pub decode: u64,
    /// Ticks spent swapped out to the host (preemption → rejoin).
    pub swap_wait: u64,
    /// Ticks spent in flight between shards (extract → resume).
    pub migration_wait: u64,
}

impl StageWaterfall {
    /// Stage names in waterfall order, matching the struct fields.
    pub const STAGES: [&'static str; 5] = ["queueing", "prefill", "decode", "swap_wait", "migration_wait"];

    /// The stage durations in [`StageWaterfall::STAGES`] order.
    pub fn stages(&self) -> [u64; 5] {
        [self.queueing, self.prefill, self.decode, self.swap_wait, self.migration_wait]
    }

    /// End-to-end latency: the exact sum of all five stages.
    pub fn e2e(&self) -> u64 {
        self.stages().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_sum_to_e2e() {
        let w = StageWaterfall { queueing: 3, prefill: 5, decode: 20, swap_wait: 4, migration_wait: 2 };
        assert_eq!(w.e2e(), 34);
        assert_eq!(w.stages().len(), StageWaterfall::STAGES.len());
        assert_eq!(StageWaterfall::default().e2e(), 0);
    }
}

//! Typed lifecycle events, the sink trait they flow into, and the
//! engine-side [`Tracer`] that stamps them.

use std::fmt;
use std::sync::{Arc, Mutex};

/// What happened to a request at one point in its lifecycle.
///
/// Payload fields are deliberately plain integers / static strings so
/// events are `Copy`-cheap, comparable, and render deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The request arrived at the serving layer.
    Submitted {
        /// Prompt length in tokens.
        prompt_tokens: u32,
        /// Generation cap in tokens.
        max_new_tokens: u32,
        /// Scheduling priority (higher = more urgent).
        priority: u32,
    },
    /// Admission screening passed; the request joined the wait queue.
    Queued,
    /// The request left the queue and was submitted to an engine.
    Admitted {
        /// KV bytes reserved against device capacity at admission.
        est_bytes: u64,
    },
    /// Admission turned the request away for good.
    Rejected {
        /// Stable reason label (`never_fits`, `queue_full`, `invalid`).
        reason: &'static str,
    },
    /// A chunk of on-clock prefill work landed for this request.
    PrefillChunk {
        /// Prompt tokens consumed by this chunk.
        tokens: u32,
        /// Prompt tokens still waiting after this chunk.
        remaining: u32,
    },
    /// The first generated token (end of the prefill stage).
    FirstToken,
    /// A subsequent decode step produced a token.
    DecodeTick {
        /// KV entries evicted while producing this token.
        evictions: u32,
        /// Resident KV cache length after this token.
        cache_len: u32,
    },
    /// The scheduler paused this session to free capacity.
    Preempted,
    /// KV bytes started moving to the host after a preemption.
    SwapOutStart {
        /// Bytes crossing the host link.
        bytes: u64,
    },
    /// A swapped-out session finished its costed swap-in and rejoined.
    SwapInComplete {
        /// Virtual ticks spent off the device (pause → rejoin).
        wait_ticks: u64,
    },
    /// The cluster plane started migrating this session to another shard.
    MigrationStart {
        /// Destination shard id.
        to_shard: u32,
        /// KV bytes crossing both host links.
        bytes: u64,
    },
    /// A migrated session landed and resumed on its destination shard.
    MigrationLand {
        /// Source shard id.
        from_shard: u32,
        /// Virtual ticks spent in flight (extract → resume).
        wait_ticks: u64,
    },
    /// Terminal: the request produced its full token stream.
    Finished {
        /// Total generated tokens.
        generated_tokens: u32,
    },
    /// Engine-level: the session was paused (`Engine::pause`).
    Paused,
    /// Engine-level: the session was resumed (`Engine::resume`).
    Resumed,
    /// Engine-level: the session was extracted for migration
    /// (`Engine::extract`).
    Extracted,
    /// Engine-level: a migrated session was adopted
    /// (`Engine::adopt`).
    Adopted,
    /// Cluster-plane: a shard failed (fail-stop) and left routing; its
    /// in-flight work was lost. The event's `request` field carries the
    /// shard id — there is no single request this event belongs to.
    ShardDown {
        /// In-flight requests purged by the crash (queued + admitted).
        lost: u32,
    },
    /// Cluster-plane: a failed shard recovered and rejoined routing.
    /// The event's `request` field carries the shard id.
    ShardUp {
        /// Virtual ticks the shard spent down.
        down_ticks: u64,
    },
    /// The request missed a deadline and was torn down. Not terminal:
    /// the retry policy decides whether it re-enters admission
    /// (`Retried`) or gives up (`DeadLetter`).
    TimedOut {
        /// Which deadline was missed (`ttft` or `e2e`).
        deadline: &'static str,
    },
    /// The request re-entered the cluster's retry queue after a crash
    /// loss or a deadline timeout, with exponential backoff.
    Retried {
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// Terminal: the load-shedder dropped this queued request to keep
    /// the cluster out of overload collapse.
    Shed,
    /// Terminal: the request exhausted its retry budget and was
    /// dead-lettered.
    DeadLetter {
        /// Retry attempts consumed before giving up.
        attempts: u32,
    },
    /// A previously lost request was re-admitted into an engine —
    /// recovery complete; its token stream restarts from the prompt.
    Recovered {
        /// Ticks from the loss to this re-admission.
        recovery_ticks: u64,
    },
    /// A cold prefix-cache entry left HBM for the host-memory tier
    /// under byte pressure. Stamped with the trace id of the session
    /// whose insertion (or promotion) displaced it. Emitted
    /// coordinator-side only, like every engine event.
    PrefixSpill {
        /// KV bytes crossing the host link, device → host.
        bytes: u64,
    },
    /// A spilled prefix-cache entry was promoted back to the device on
    /// a hit; the serving layer serializes the fill latency onto the
    /// hitting session's clock. Stamped with the hitting session's
    /// trace id.
    PrefixFill {
        /// KV bytes crossing the host link, host → device.
        bytes: u64,
    },
    /// An idle, unpinned prefix-cache entry hit its TTL and was
    /// dropped. No single request owns the event, so its `request`
    /// field carries the cache entry's stable id instead.
    PrefixExpired {
        /// KV bytes the expired entry freed.
        bytes: u64,
    },
}

impl TraceEventKind {
    /// Stable lowercase label for this event kind (used as the metrics
    /// counter key and the Chrome-trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Submitted { .. } => "submitted",
            TraceEventKind::Queued => "queued",
            TraceEventKind::Admitted { .. } => "admitted",
            TraceEventKind::Rejected { .. } => "rejected",
            TraceEventKind::PrefillChunk { .. } => "prefill_chunk",
            TraceEventKind::FirstToken => "first_token",
            TraceEventKind::DecodeTick { .. } => "decode_tick",
            TraceEventKind::Preempted => "preempted",
            TraceEventKind::SwapOutStart { .. } => "swap_out_start",
            TraceEventKind::SwapInComplete { .. } => "swap_in_complete",
            TraceEventKind::MigrationStart { .. } => "migration_start",
            TraceEventKind::MigrationLand { .. } => "migration_land",
            TraceEventKind::Finished { .. } => "finished",
            TraceEventKind::Paused => "paused",
            TraceEventKind::Resumed => "resumed",
            TraceEventKind::Extracted => "extracted",
            TraceEventKind::Adopted => "adopted",
            TraceEventKind::ShardDown { .. } => "shard_down",
            TraceEventKind::ShardUp { .. } => "shard_up",
            TraceEventKind::TimedOut { .. } => "timed_out",
            TraceEventKind::Retried { .. } => "retried",
            TraceEventKind::Shed => "shed",
            TraceEventKind::DeadLetter { .. } => "dead_letter",
            TraceEventKind::Recovered { .. } => "recovered",
            TraceEventKind::PrefixSpill { .. } => "prefix_spill",
            TraceEventKind::PrefixFill { .. } => "prefix_fill",
            TraceEventKind::PrefixExpired { .. } => "prefix_expired",
        }
    }

    /// Whether this event ends a request's lifecycle. Every submitted
    /// request reaches exactly one terminal event on a drained run —
    /// pinned by the event-conservation property test. `TimedOut` is
    /// *not* terminal (the request may retry); `DeadLetter` and `Shed`
    /// are.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TraceEventKind::Finished { .. }
                | TraceEventKind::Rejected { .. }
                | TraceEventKind::Shed
                | TraceEventKind::DeadLetter { .. }
        )
    }
}

/// One stamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual tick of the serving clock when the event fired.
    pub tick: u64,
    /// Engine cycle clock (accumulated batched cycles) at the event.
    pub cycles: u64,
    /// Shard the event fired on (0 for a standalone server).
    pub shard: u32,
    /// Request id: the global arrival index at the serving layer, so
    /// one request keeps one id across shards, swaps, and migrations.
    pub request: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Receives trace events. Implementations must be `Send` so a sink can
/// be shared across shards, but all emission happens on the coordinator
/// thread — implementations never see concurrent calls within one
/// simulation.
pub trait TraceSink: Send {
    /// Record one event. Called in deterministic order.
    fn record(&mut self, event: &TraceEvent);
}

/// A sink that buffers every event in arrival order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drain the recorded events, leaving the sink empty.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// A cloneable, shareable handle to a sink. Configs hold this so one
/// sink can observe every shard of a cluster; the `Mutex` is only a
/// sharing formality — emission is single-threaded by construction.
#[derive(Clone)]
pub struct SinkHandle(Arc<Mutex<dyn TraceSink>>);

impl SinkHandle {
    /// Wrap any sink in a shareable handle.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Self(Arc::new(Mutex::new(sink)))
    }

    /// A handle backed by a [`RecordingSink`], plus the shared buffer so
    /// the caller can read the events back after the run.
    pub fn recording() -> (Self, Arc<Mutex<RecordingSink>>) {
        let buffer = Arc::new(Mutex::new(RecordingSink::new()));
        let erased: Arc<Mutex<dyn TraceSink>> = buffer.clone();
        (Self(erased), buffer)
    }

    /// Deliver one event to the underlying sink.
    pub fn record(&self, event: TraceEvent) {
        self.0.lock().expect("trace sink poisoned").record(&event);
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

/// The per-engine emitter: a sink handle plus the shard id and current
/// virtual tick to stamp events with. The owning layer refreshes the
/// tick each simulation step via [`Tracer::set_now`].
#[derive(Debug, Clone)]
pub struct Tracer {
    sink: SinkHandle,
    shard: u32,
    now: u64,
}

impl Tracer {
    /// A tracer feeding `sink`, stamping events with `shard`.
    pub fn new(sink: SinkHandle, shard: u32) -> Self {
        Self { sink, shard, now: 0 }
    }

    /// Update the virtual tick stamped onto subsequent events.
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// The virtual tick currently stamped onto events.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The shard id stamped onto events.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Emit one event at the current tick.
    pub fn emit(&self, cycles: u64, request: u64, kind: TraceEventKind) {
        self.sink.record(TraceEvent { tick: self.now, cycles, shard: self.shard, request, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_preserves_order() {
        let (handle, buffer) = SinkHandle::recording();
        let mut tracer = Tracer::new(handle, 3);
        tracer.emit(10, 1, TraceEventKind::Queued);
        tracer.set_now(5);
        tracer.emit(20, 1, TraceEventKind::Admitted { est_bytes: 64 });
        let events = buffer.lock().unwrap().events().to_vec();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tick, 0);
        assert_eq!(events[0].shard, 3);
        assert_eq!(events[1].tick, 5);
        assert_eq!(events[1].cycles, 20);
        assert_eq!(events[1].kind.label(), "admitted");
    }

    #[test]
    fn terminal_classification() {
        assert!(TraceEventKind::Finished { generated_tokens: 4 }.is_terminal());
        assert!(TraceEventKind::Rejected { reason: "queue_full" }.is_terminal());
        assert!(TraceEventKind::Shed.is_terminal());
        assert!(TraceEventKind::DeadLetter { attempts: 3 }.is_terminal());
        assert!(!TraceEventKind::Queued.is_terminal());
        assert!(!TraceEventKind::Preempted.is_terminal());
        // A timeout may lead to a retry; only the dead letter ends the
        // lifecycle.
        assert!(!TraceEventKind::TimedOut { deadline: "ttft" }.is_terminal());
        assert!(!TraceEventKind::Retried { attempt: 1 }.is_terminal());
        assert!(!TraceEventKind::ShardDown { lost: 2 }.is_terminal());
        assert!(!TraceEventKind::Recovered { recovery_ticks: 9 }.is_terminal());
    }

    #[test]
    fn prefix_labels_are_stable_and_not_terminal() {
        assert_eq!(TraceEventKind::PrefixSpill { bytes: 64 }.label(), "prefix_spill");
        assert_eq!(TraceEventKind::PrefixFill { bytes: 64 }.label(), "prefix_fill");
        assert_eq!(TraceEventKind::PrefixExpired { bytes: 64 }.label(), "prefix_expired");
        assert!(!TraceEventKind::PrefixSpill { bytes: 0 }.is_terminal());
        assert!(!TraceEventKind::PrefixFill { bytes: 0 }.is_terminal());
        assert!(!TraceEventKind::PrefixExpired { bytes: 0 }.is_terminal());
    }

    #[test]
    fn fault_labels_are_stable() {
        assert_eq!(TraceEventKind::ShardDown { lost: 0 }.label(), "shard_down");
        assert_eq!(TraceEventKind::ShardUp { down_ticks: 4 }.label(), "shard_up");
        assert_eq!(TraceEventKind::TimedOut { deadline: "e2e" }.label(), "timed_out");
        assert_eq!(TraceEventKind::Retried { attempt: 2 }.label(), "retried");
        assert_eq!(TraceEventKind::Shed.label(), "shed");
        assert_eq!(TraceEventKind::DeadLetter { attempts: 1 }.label(), "dead_letter");
        assert_eq!(TraceEventKind::Recovered { recovery_ticks: 1 }.label(), "recovered");
    }
}

//! Typed lifecycle events, the sink trait they flow into, and the
//! engine-side [`Tracer`] that stamps them.

use std::fmt;
use std::sync::{Arc, Mutex};

/// What happened to a request at one point in its lifecycle.
///
/// Payload fields are deliberately plain integers / static strings so
/// events are `Copy`-cheap, comparable, and render deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The request arrived at the serving layer.
    Submitted {
        /// Prompt length in tokens.
        prompt_tokens: u32,
        /// Generation cap in tokens.
        max_new_tokens: u32,
        /// Scheduling priority (higher = more urgent).
        priority: u32,
    },
    /// Admission screening passed; the request joined the wait queue.
    Queued,
    /// The request left the queue and was submitted to an engine.
    Admitted {
        /// KV bytes reserved against device capacity at admission.
        est_bytes: u64,
    },
    /// Admission turned the request away for good.
    Rejected {
        /// Stable reason label (`never_fits`, `queue_full`, `invalid`).
        reason: &'static str,
    },
    /// A chunk of on-clock prefill work landed for this request.
    PrefillChunk {
        /// Prompt tokens consumed by this chunk.
        tokens: u32,
        /// Prompt tokens still waiting after this chunk.
        remaining: u32,
    },
    /// The first generated token (end of the prefill stage).
    FirstToken,
    /// A subsequent decode step produced a token.
    DecodeTick {
        /// KV entries evicted while producing this token.
        evictions: u32,
        /// Resident KV cache length after this token.
        cache_len: u32,
    },
    /// The scheduler paused this session to free capacity.
    Preempted,
    /// KV bytes started moving to the host after a preemption.
    SwapOutStart {
        /// Bytes crossing the host link.
        bytes: u64,
    },
    /// A swapped-out session finished its costed swap-in and rejoined.
    SwapInComplete {
        /// Virtual ticks spent off the device (pause → rejoin).
        wait_ticks: u64,
    },
    /// The cluster plane started migrating this session to another shard.
    MigrationStart {
        /// Destination shard id.
        to_shard: u32,
        /// KV bytes crossing both host links.
        bytes: u64,
    },
    /// A migrated session landed and resumed on its destination shard.
    MigrationLand {
        /// Source shard id.
        from_shard: u32,
        /// Virtual ticks spent in flight (extract → resume).
        wait_ticks: u64,
    },
    /// Terminal: the request produced its full token stream.
    Finished {
        /// Total generated tokens.
        generated_tokens: u32,
    },
    /// Engine-level: the session was paused (`Engine::pause`).
    Paused,
    /// Engine-level: the session was resumed (`Engine::resume`).
    Resumed,
    /// Engine-level: the session was extracted for migration
    /// (`Engine::extract`).
    Extracted,
    /// Engine-level: a migrated session was adopted
    /// (`Engine::adopt`).
    Adopted,
}

impl TraceEventKind {
    /// Stable lowercase label for this event kind (used as the metrics
    /// counter key and the Chrome-trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Submitted { .. } => "submitted",
            TraceEventKind::Queued => "queued",
            TraceEventKind::Admitted { .. } => "admitted",
            TraceEventKind::Rejected { .. } => "rejected",
            TraceEventKind::PrefillChunk { .. } => "prefill_chunk",
            TraceEventKind::FirstToken => "first_token",
            TraceEventKind::DecodeTick { .. } => "decode_tick",
            TraceEventKind::Preempted => "preempted",
            TraceEventKind::SwapOutStart { .. } => "swap_out_start",
            TraceEventKind::SwapInComplete { .. } => "swap_in_complete",
            TraceEventKind::MigrationStart { .. } => "migration_start",
            TraceEventKind::MigrationLand { .. } => "migration_land",
            TraceEventKind::Finished { .. } => "finished",
            TraceEventKind::Paused => "paused",
            TraceEventKind::Resumed => "resumed",
            TraceEventKind::Extracted => "extracted",
            TraceEventKind::Adopted => "adopted",
        }
    }

    /// Whether this event ends a request's lifecycle. Every submitted
    /// request reaches exactly one terminal event on a drained run —
    /// pinned by the event-conservation property test.
    pub fn is_terminal(&self) -> bool {
        matches!(self, TraceEventKind::Finished { .. } | TraceEventKind::Rejected { .. })
    }
}

/// One stamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual tick of the serving clock when the event fired.
    pub tick: u64,
    /// Engine cycle clock (accumulated batched cycles) at the event.
    pub cycles: u64,
    /// Shard the event fired on (0 for a standalone server).
    pub shard: u32,
    /// Request id: the global arrival index at the serving layer, so
    /// one request keeps one id across shards, swaps, and migrations.
    pub request: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Receives trace events. Implementations must be `Send` so a sink can
/// be shared across shards, but all emission happens on the coordinator
/// thread — implementations never see concurrent calls within one
/// simulation.
pub trait TraceSink: Send {
    /// Record one event. Called in deterministic order.
    fn record(&mut self, event: &TraceEvent);
}

/// A sink that buffers every event in arrival order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecordingSink {
    events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drain the recorded events, leaving the sink empty.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// A cloneable, shareable handle to a sink. Configs hold this so one
/// sink can observe every shard of a cluster; the `Mutex` is only a
/// sharing formality — emission is single-threaded by construction.
#[derive(Clone)]
pub struct SinkHandle(Arc<Mutex<dyn TraceSink>>);

impl SinkHandle {
    /// Wrap any sink in a shareable handle.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        Self(Arc::new(Mutex::new(sink)))
    }

    /// A handle backed by a [`RecordingSink`], plus the shared buffer so
    /// the caller can read the events back after the run.
    pub fn recording() -> (Self, Arc<Mutex<RecordingSink>>) {
        let buffer = Arc::new(Mutex::new(RecordingSink::new()));
        let erased: Arc<Mutex<dyn TraceSink>> = buffer.clone();
        (Self(erased), buffer)
    }

    /// Deliver one event to the underlying sink.
    pub fn record(&self, event: TraceEvent) {
        self.0.lock().expect("trace sink poisoned").record(&event);
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

/// The per-engine emitter: a sink handle plus the shard id and current
/// virtual tick to stamp events with. The owning layer refreshes the
/// tick each simulation step via [`Tracer::set_now`].
#[derive(Debug, Clone)]
pub struct Tracer {
    sink: SinkHandle,
    shard: u32,
    now: u64,
}

impl Tracer {
    /// A tracer feeding `sink`, stamping events with `shard`.
    pub fn new(sink: SinkHandle, shard: u32) -> Self {
        Self { sink, shard, now: 0 }
    }

    /// Update the virtual tick stamped onto subsequent events.
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
    }

    /// The virtual tick currently stamped onto events.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The shard id stamped onto events.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Emit one event at the current tick.
    pub fn emit(&self, cycles: u64, request: u64, kind: TraceEventKind) {
        self.sink.record(TraceEvent { tick: self.now, cycles, shard: self.shard, request, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_preserves_order() {
        let (handle, buffer) = SinkHandle::recording();
        let mut tracer = Tracer::new(handle, 3);
        tracer.emit(10, 1, TraceEventKind::Queued);
        tracer.set_now(5);
        tracer.emit(20, 1, TraceEventKind::Admitted { est_bytes: 64 });
        let events = buffer.lock().unwrap().events().to_vec();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tick, 0);
        assert_eq!(events[0].shard, 3);
        assert_eq!(events[1].tick, 5);
        assert_eq!(events[1].cycles, 20);
        assert_eq!(events[1].kind.label(), "admitted");
    }

    #[test]
    fn terminal_classification() {
        assert!(TraceEventKind::Finished { generated_tokens: 4 }.is_terminal());
        assert!(TraceEventKind::Rejected { reason: "queue_full" }.is_terminal());
        assert!(!TraceEventKind::Queued.is_terminal());
        assert!(!TraceEventKind::Preempted.is_terminal());
    }
}

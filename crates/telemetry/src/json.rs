//! A minimal JSON well-formedness checker.
//!
//! The workspace hand-rolls all of its JSON output (no serde in the
//! offline container), so tests and CI need a way to prove the bytes
//! actually parse. This is a strict recursive-descent validator over
//! RFC 8259 grammar — it accepts or rejects, it does not build a DOM.

/// Validate that `input` is exactly one well-formed JSON value.
///
/// Returns `Err` with a byte offset and message on the first violation.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, msg: &str) -> String {
    format!("{msg} at byte {pos}")
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "invalid \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "unescaped control character")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return Err(err(*pos, "invalid number")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(err(*pos, "digit required after '.'"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return Err(err(*pos, "digit required in exponent"));
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "-0.5e+3",
            "\"a \\\"quoted\\\" string\\n\"",
            "[]",
            "{}",
            "[1, 2, [3, {\"k\": null}]]",
            "{\"a\": {\"b\": [1.5, \"x\"]}, \"c\": false}",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "[1] trailing",
            "{'single': 1}",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}

//! Counters, gauges, log2-bucket histograms, and the one nearest-rank
//! percentile implementation the whole workspace routes through.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nearest-rank percentile over an already-sorted slice.
///
/// Total: returns `None` on an empty slice instead of panicking, so no
/// caller can crash on a zero-completion run. For non-empty input this
/// is the exact nearest-rank definition (`ceil(q·n)`-th order statistic,
/// clamped to `[1, n]`) that `ServingReport` and `ClusterReport` have
/// always printed — routing through here changes no report byte.
pub fn nearest_rank<T: Copy>(sorted: &[T], q: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let len = sorted.len();
    let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
    Some(sorted[rank - 1])
}

/// Exact summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSummary {
    /// Median (nearest-rank p50).
    pub p50: u64,
    /// Nearest-rank p95.
    pub p95: u64,
    /// Nearest-rank p99.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples.
    pub sum: u64,
}

/// Sort `values` and summarize them; `None` when empty.
pub fn summarize(mut values: Vec<u64>) -> Option<SampleSummary> {
    values.sort_unstable();
    let p50 = nearest_rank(&values, 0.50)?;
    Some(SampleSummary {
        p50,
        p95: nearest_rank(&values, 0.95)?,
        p99: nearest_rank(&values, 0.99)?,
        max: *values.last()?,
        count: values.len(),
        sum: values.iter().sum(),
    })
}

/// Number of log2 buckets: one for zero plus one per bit width of `u64`.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-size histogram with power-of-two bucket boundaries.
///
/// Value `v` lands in bucket `bit_width(v)` (0 for `v == 0`), so bucket
/// `i ≥ 1` covers `[2^(i-1), 2^i)`. Alongside the buckets it tracks
/// exact count / sum / min / max, which makes merging and JSON export
/// deterministic and allocation-free. The buckets are an *approximate*
/// distribution (factor-of-two resolution); exact report percentiles
/// keep using [`nearest_rank`] over raw samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self { buckets: [0; LOG2_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index a value lands in: 0 for zero, else the bit width.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive-exclusive `[lo, hi)` bounds of bucket `index`
    /// (bucket 0 is the singleton `[0, 1)`; the last bucket's upper
    /// bound saturates at `u64::MAX`).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < LOG2_BUCKETS, "bucket index out of range");
        if index == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index == LOG2_BUCKETS - 1 { u64::MAX } else { 1u64 << index };
            (lo, hi)
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bucket-resolution percentile estimate: the upper bound of the
    /// bucket holding the nearest-rank sample (clamped to the observed
    /// max). `None` when empty. Exact to a factor of two; use
    /// [`nearest_rank`] on raw samples when exactness matters.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = Self::bucket_bounds(i);
                return Some(hi.saturating_sub(1).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Deterministic JSON object: exact stats plus the non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0)
        );
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let (lo, hi) = Self::bucket_bounds(i);
            let _ = write!(out, "{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {n}}}");
        }
        out.push_str("]}");
        out
    }
}

/// A deterministic bag of named counters, gauges, and histograms.
///
/// Names are stored in `BTreeMap`s so iteration — and therefore
/// [`MetricsRegistry::to_json`] — is byte-stable across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// The named counter's value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation landed in it.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Fold another registry into this one (counters add, gauges
    /// overwrite, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Render the registry as a deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{k}\": {v:.6}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{k}\": {}", h.to_json());
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_is_total() {
        let empty: [u64; 0] = [];
        assert_eq!(nearest_rank(&empty, 0.5), None);
        assert_eq!(nearest_rank(&[7u64], 0.5), Some(7));
        assert_eq!(nearest_rank(&[7u64], 0.99), Some(7));
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 0.50), Some(50));
        assert_eq!(nearest_rank(&v, 0.95), Some(95));
        assert_eq!(nearest_rank(&v, 0.99), Some(99));
        assert_eq!(nearest_rank(&v, 1.0), Some(100));
        assert_eq!(nearest_rank(&v, 0.0), Some(1));
    }

    #[test]
    fn summarize_matches_nearest_rank() {
        assert_eq!(summarize(Vec::new()), None);
        let s = summarize(vec![5, 1, 9, 3, 7]).unwrap();
        assert_eq!(s.p50, 5);
        assert_eq!(s.p95, 9);
        assert_eq!(s.max, 9);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 25);
    }

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Log2Histogram::bucket_bounds(3), (4, 8));
        let (lo, hi) = Log2Histogram::bucket_bounds(64);
        assert_eq!(lo, 1u64 << 63);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn histogram_tracks_exact_stats() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(0.5), None);
        for v in [0u64, 1, 3, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1012);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // p50 sample is 3 → bucket [2,4) → upper-bound estimate 3.
        assert_eq!(h.percentile(0.5), Some(3));
        // p99 sample is 1000 → bucket [512,2048) → clamped to max.
        assert_eq!(h.percentile(0.99), Some(1000));
        let mut other = Log2Histogram::new();
        other.record(2);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1014);
    }

    #[test]
    fn registry_json_is_deterministic_and_valid() {
        let mut m = MetricsRegistry::new();
        m.counter_add("b_second", 2);
        m.counter_add("a_first", 1);
        m.counter_add("a_first", 1);
        m.set_gauge("rate", 0.5);
        m.observe("lat", 3);
        m.observe("lat", 100);
        let json = m.to_json();
        assert_eq!(json, m.clone().to_json());
        crate::json::validate(&json).expect("registry JSON must parse");
        // BTreeMap ordering: a_first before b_second.
        let a = json.find("a_first").unwrap();
        let b = json.find("b_second").unwrap();
        assert!(a < b);
        assert_eq!(m.counter("a_first"), 2);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
    }
}

//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Layout: one *process* per shard (`pid` = shard id), one *thread* per
//! request (`tid` = request id), duration spans (`"ph":"B"`/`"E"`) for
//! the lifecycle stages (queued → prefill → decode, interrupted by
//! swap-wait / migration-wait spans), and instants for point events
//! (submitted, rejected, swap-out, prefill chunks, finished).
//! Timestamps are the virtual tick rendered as microseconds, so one
//! tick = 1µs on the Perfetto timeline. A migrated request's wait span
//! closes on the source shard and its resumed stage opens on the
//! destination shard, keeping begin/end nesting valid per track.
//!
//! The export is a pure function of the event slice: the same events
//! produce the same bytes (determinism invariant #8).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::event::{TraceEvent, TraceEventKind};

/// An open duration span on some request's track.
struct Open {
    stage: &'static str,
    pid: u32,
}

fn begin(parts: &mut Vec<String>, stage: &str, pid: u32, tid: u64, ts: u64, cycles: u64) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"name\": \"{stage}\", \"cat\": \"request\", \"ph\": \"B\", \"ts\": {ts}, \
         \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"cycles\": {cycles}}}}}"
    );
    parts.push(s);
    stage.to_string()
}

fn end(parts: &mut Vec<String>, stage: &str, pid: u32, tid: u64, ts: u64) {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"name\": \"{stage}\", \"cat\": \"request\", \"ph\": \"E\", \"ts\": {ts}, \
         \"pid\": {pid}, \"tid\": {tid}}}"
    );
    parts.push(s);
}

fn instant(parts: &mut Vec<String>, name: &str, pid: u32, tid: u64, ts: u64, args: &str) {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"name\": \"{name}\", \"cat\": \"request\", \"ph\": \"i\", \"s\": \"t\", \
         \"ts\": {ts}, \"pid\": {pid}, \"tid\": {tid}, \"args\": {{{args}}}}}"
    );
    parts.push(s);
}

/// Render an event stream as a complete Chrome trace-event JSON
/// document. Pure and deterministic: equal event slices yield equal
/// strings. Spans left open by a truncated run are closed at the
/// largest observed timestamp so the file always loads.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut open: BTreeMap<u64, Open> = BTreeMap::new();
    let mut resume: BTreeMap<u64, &'static str> = BTreeMap::new();
    let mut shards: BTreeSet<u32> = BTreeSet::new();
    let mut tracks: BTreeSet<(u32, u64)> = BTreeSet::new();
    let mut max_ts = 0u64;

    // Close the request's open span, remembering its stage for resume.
    let close = |parts: &mut Vec<String>, open: &mut BTreeMap<u64, Open>, req: u64, ts: u64| {
        if let Some(o) = open.remove(&req) {
            end(parts, o.stage, o.pid, req, ts);
            o.stage
        } else {
            "decode"
        }
    };

    for ev in events {
        let (ts, pid, req, cyc) = (ev.tick, ev.shard, ev.request, ev.cycles);
        shards.insert(pid);
        tracks.insert((pid, req));
        max_ts = max_ts.max(ts);
        match ev.kind {
            TraceEventKind::Submitted { prompt_tokens, max_new_tokens, priority } => {
                let args = format!(
                    "\"prompt_tokens\": {prompt_tokens}, \"max_new_tokens\": {max_new_tokens}, \
                     \"priority\": {priority}"
                );
                instant(&mut parts, "submitted", pid, req, ts, &args);
            }
            TraceEventKind::Queued => {
                begin(&mut parts, "queued", pid, req, ts, cyc);
                open.insert(req, Open { stage: "queued", pid });
            }
            TraceEventKind::Admitted { est_bytes } => {
                close(&mut parts, &mut open, req, ts);
                instant(&mut parts, "admitted", pid, req, ts, &format!("\"est_bytes\": {est_bytes}"));
                begin(&mut parts, "prefill", pid, req, ts, cyc);
                open.insert(req, Open { stage: "prefill", pid });
            }
            TraceEventKind::Rejected { reason } => {
                close(&mut parts, &mut open, req, ts);
                instant(&mut parts, "rejected", pid, req, ts, &format!("\"reason\": \"{reason}\""));
            }
            TraceEventKind::PrefillChunk { tokens, remaining } => {
                let args = format!("\"tokens\": {tokens}, \"remaining\": {remaining}");
                instant(&mut parts, "prefill chunk", pid, req, ts, &args);
            }
            TraceEventKind::FirstToken => {
                close(&mut parts, &mut open, req, ts);
                begin(&mut parts, "decode", pid, req, ts, cyc);
                open.insert(req, Open { stage: "decode", pid });
            }
            TraceEventKind::DecodeTick { .. } => {
                // One instant per token would swamp the timeline; the
                // decode span plus Finished's token count carry the story.
            }
            TraceEventKind::Preempted => {
                let was = close(&mut parts, &mut open, req, ts);
                resume.insert(req, was);
                begin(&mut parts, "swap wait", pid, req, ts, cyc);
                open.insert(req, Open { stage: "swap wait", pid });
            }
            TraceEventKind::SwapOutStart { bytes } => {
                instant(&mut parts, "swap out", pid, req, ts, &format!("\"bytes\": {bytes}"));
            }
            TraceEventKind::SwapInComplete { wait_ticks } => {
                close(&mut parts, &mut open, req, ts);
                instant(&mut parts, "swap in", pid, req, ts, &format!("\"wait_ticks\": {wait_ticks}"));
                let stage = resume.remove(&req).unwrap_or("decode");
                begin(&mut parts, stage, pid, req, ts, cyc);
                open.insert(req, Open { stage, pid });
            }
            TraceEventKind::MigrationStart { to_shard, bytes } => {
                let was = close(&mut parts, &mut open, req, ts);
                resume.insert(req, was);
                let args = format!("\"to_shard\": {to_shard}, \"bytes\": {bytes}");
                instant(&mut parts, "migration out", pid, req, ts, &args);
                begin(&mut parts, "migration wait", pid, req, ts, cyc);
                open.insert(req, Open { stage: "migration wait", pid });
            }
            TraceEventKind::MigrationLand { from_shard, wait_ticks } => {
                // The wait span closes on the *source* pid it opened on;
                // the resumed stage opens on the destination pid.
                close(&mut parts, &mut open, req, ts);
                let args = format!("\"from_shard\": {from_shard}, \"wait_ticks\": {wait_ticks}");
                instant(&mut parts, "migration land", pid, req, ts, &args);
                let stage = resume.remove(&req).unwrap_or("decode");
                begin(&mut parts, stage, pid, req, ts, cyc);
                open.insert(req, Open { stage, pid });
            }
            TraceEventKind::Finished { generated_tokens } => {
                close(&mut parts, &mut open, req, ts);
                let args = format!("\"generated_tokens\": {generated_tokens}");
                instant(&mut parts, "finished", pid, req, ts, &args);
            }
            TraceEventKind::Paused
            | TraceEventKind::Resumed
            | TraceEventKind::Extracted
            | TraceEventKind::Adopted => {
                // Engine-internal; the serving-level events above already
                // draw the corresponding spans.
            }
            TraceEventKind::ShardDown { lost } => {
                // Cluster-plane event: `req` carries the shard id, so it
                // lands on a dedicated per-shard track.
                instant(&mut parts, "shard down", pid, req, ts, &format!("\"lost\": {lost}"));
            }
            TraceEventKind::ShardUp { down_ticks } => {
                instant(&mut parts, "shard up", pid, req, ts, &format!("\"down_ticks\": {down_ticks}"));
            }
            TraceEventKind::TimedOut { deadline } => {
                close(&mut parts, &mut open, req, ts);
                resume.remove(&req);
                instant(&mut parts, "timed out", pid, req, ts, &format!("\"deadline\": \"{deadline}\""));
            }
            TraceEventKind::Retried { attempt } => {
                instant(&mut parts, "retried", pid, req, ts, &format!("\"attempt\": {attempt}"));
            }
            TraceEventKind::Shed => {
                close(&mut parts, &mut open, req, ts);
                resume.remove(&req);
                instant(&mut parts, "shed", pid, req, ts, "");
            }
            TraceEventKind::DeadLetter { attempts } => {
                close(&mut parts, &mut open, req, ts);
                resume.remove(&req);
                instant(&mut parts, "dead letter", pid, req, ts, &format!("\"attempts\": {attempts}"));
            }
            TraceEventKind::Recovered { recovery_ticks } => {
                let args = format!("\"recovery_ticks\": {recovery_ticks}");
                instant(&mut parts, "recovered", pid, req, ts, &args);
            }
            TraceEventKind::PrefixSpill { bytes } => {
                instant(&mut parts, "prefix spill", pid, req, ts, &format!("\"bytes\": {bytes}"));
            }
            TraceEventKind::PrefixFill { bytes } => {
                instant(&mut parts, "prefix fill", pid, req, ts, &format!("\"bytes\": {bytes}"));
            }
            TraceEventKind::PrefixExpired { bytes } => {
                // `req` carries the cache entry id, not a request id; the
                // instant still lands on a per-id track on the shard.
                instant(&mut parts, "prefix expired", pid, req, ts, &format!("\"bytes\": {bytes}"));
            }
        }
    }

    // A truncated run can leave spans open; close them so the file loads.
    for (req, o) in &open {
        end(&mut parts, o.stage, o.pid, *req, max_ts);
    }

    let mut meta: Vec<String> = Vec::new();
    for &pid in &shards {
        meta.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \
             \"args\": {{\"name\": \"shard {pid}\"}}}}"
        ));
        meta.push(format!(
            "{{\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": {pid}, \
             \"args\": {{\"sort_index\": {pid}}}}}"
        ));
    }
    for &(pid, tid) in &tracks {
        meta.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"request {tid}\"}}}}"
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    for part in meta.iter().chain(parts.iter()) {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(part);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TraceEventKind};

    fn ev(tick: u64, shard: u32, request: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { tick, cycles: tick * 10, shard, request, kind }
    }

    #[test]
    fn lifecycle_exports_valid_balanced_json() {
        let events = vec![
            ev(0, 0, 7, TraceEventKind::Submitted { prompt_tokens: 8, max_new_tokens: 4, priority: 1 }),
            ev(0, 0, 7, TraceEventKind::Queued),
            ev(1, 0, 7, TraceEventKind::Admitted { est_bytes: 512 }),
            ev(2, 0, 7, TraceEventKind::FirstToken),
            ev(3, 0, 7, TraceEventKind::Preempted),
            ev(3, 0, 7, TraceEventKind::SwapOutStart { bytes: 256 }),
            ev(6, 0, 7, TraceEventKind::SwapInComplete { wait_ticks: 3 }),
            ev(7, 0, 7, TraceEventKind::MigrationStart { to_shard: 1, bytes: 256 }),
            ev(9, 1, 7, TraceEventKind::MigrationLand { from_shard: 0, wait_ticks: 2 }),
            ev(11, 1, 7, TraceEventKind::Finished { generated_tokens: 4 }),
        ];
        let json = chrome_trace_json(&events);
        crate::json::validate(&json).expect("chrome trace must parse");
        // Determinism: same events, same bytes.
        assert_eq!(json, chrome_trace_json(&events));
        // One process track per shard seen.
        assert_eq!(json.matches("process_name").count(), 2);
        assert!(json.contains("\"shard 0\""));
        assert!(json.contains("\"shard 1\""));
        // Balanced spans.
        assert_eq!(json.matches("\"ph\": \"B\"").count(), json.matches("\"ph\": \"E\"").count());
        // The migration-wait span ends on the source pid, and the resumed
        // decode span opens on the destination pid.
        assert!(json.contains(
            "{\"name\": \"migration wait\", \"cat\": \"request\", \"ph\": \"E\", \"ts\": 9, \
             \"pid\": 0, \"tid\": 7}"
        ));
        assert!(json.contains("\"finished\""));
    }

    #[test]
    fn truncated_run_closes_open_spans() {
        let events = vec![
            ev(0, 0, 1, TraceEventKind::Queued),
            ev(2, 0, 2, TraceEventKind::Queued),
            ev(5, 0, 2, TraceEventKind::Admitted { est_bytes: 64 }),
        ];
        let json = chrome_trace_json(&events);
        crate::json::validate(&json).expect("must parse");
        assert_eq!(json.matches("\"ph\": \"B\"").count(), json.matches("\"ph\": \"E\"").count());
    }

    #[test]
    fn empty_stream_is_still_a_valid_trace() {
        let json = chrome_trace_json(&[]);
        crate::json::validate(&json).expect("must parse");
        assert!(json.contains("traceEvents"));
    }
}

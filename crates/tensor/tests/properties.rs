//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use veda_tensor::norm::StreamingMoments;
use veda_tensor::softmax::{log_softmax, softmax};
use veda_tensor::{ops, Matrix, OnlineSoftmax};

fn finite_f32() -> impl Strategy<Value = f32> {
    (-50.0f32..50.0).prop_map(|x| x)
}

fn vec_f32(len: impl Into<proptest::collection::SizeRange>) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(finite_f32(), len)
}

proptest! {
    #[test]
    fn softmax_is_a_distribution(xs in vec_f32(1..64)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum = {}", sum);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
    }

    #[test]
    fn softmax_preserves_order(xs in vec_f32(2..32)) {
        let p = softmax(&xs);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] {
                    prop_assert!(p[i] >= p[j] - 1e-6);
                }
            }
        }
    }

    #[test]
    fn online_softmax_matches_two_pass(xs in vec_f32(1..128)) {
        let mut os = OnlineSoftmax::new();
        for &x in &xs { os.push(x); }
        let reference = softmax(&xs);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert!((os.normalize(x) - reference[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn log_softmax_exp_sums_to_one(xs in vec_f32(1..64)) {
        let ls = log_softmax(&xs);
        let sum: f32 = ls.iter().map(|&v| v.exp()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn streaming_moments_match_batch(xs in vec_f32(1..256)) {
        let mut m = StreamingMoments::new();
        for &x in &xs { m.push(x); }
        let n = xs.len() as f32;
        let mean = xs.iter().sum::<f32>() / n;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
        prop_assert!((m.mean() - mean).abs() < 1e-2 * (1.0 + mean.abs()));
        prop_assert!((m.variance() - var).abs() < 1e-1 * (1.0 + var));
    }

    #[test]
    fn gemv_inner_outer_duality(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in 0u64..1000,
    ) {
        // gemv_inner(q, M) computes q×Mᵀ; gemv_outer(q, Mᵀ) computes the same.
        let mut rng = veda_tensor::rng::seeded(seed);
        let data = veda_tensor::rng::normal_vec(&mut rng, rows * cols, 1.0);
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let q = veda_tensor::rng::normal_vec(&mut rng, cols, 1.0);
        let inner = ops::gemv_inner(&q, &m);
        let outer = ops::gemv_outer(&q, &m.transposed());
        prop_assert!(ops::max_abs_diff(&inner, &outer) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(
        rows in 1usize..8,
        inner in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = veda_tensor::rng::seeded(seed);
        let a = Matrix::from_vec(rows, inner, veda_tensor::rng::normal_vec(&mut rng, rows * inner, 1.0)).unwrap();
        let b = Matrix::from_vec(inner, cols, veda_tensor::rng::normal_vec(&mut rng, inner * cols, 1.0)).unwrap();
        let left = a.matmul(&b).unwrap().transposed();
        let right = b.transposed().matmul(&a.transposed()).unwrap();
        prop_assert!(ops::max_abs_diff(left.as_slice(), right.as_slice()) < 1e-3);
    }

    #[test]
    fn fp16_round_trip_is_idempotent(x in -60000.0f32..60000.0) {
        let once = veda_tensor::fp16::quantize_f32(x);
        let twice = veda_tensor::fp16::quantize_f32(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn fp16_relative_error_bounded(x in 0.001f32..60000.0) {
        let q = veda_tensor::fp16::quantize_f32(x);
        prop_assert!(((q - x) / x).abs() <= (2.0f32).powi(-11) + 1e-7);
    }

    #[test]
    fn push_remove_row_preserves_other_rows(
        n in 2usize..10,
        victim_seed in 0usize..100,
    ) {
        let mut m = Matrix::default();
        for i in 0..n {
            m.push_row(&[i as f32, (i * i) as f32]).unwrap();
        }
        let victim = victim_seed % n;
        m.remove_row(victim);
        prop_assert_eq!(m.rows(), n - 1);
        let mut expect = 0usize;
        for i in 0..n {
            if i == victim { continue; }
            prop_assert_eq!(m.row(expect)[0], i as f32);
            expect += 1;
        }
    }
}

//! Seeded random initialization helpers.
//!
//! Every stochastic component of the reproduction draws from a seeded
//! [`rand::rngs::StdRng`], so all experiments are bit-for-bit reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples one standard normal variate via Box–Muller (avoids a dependency
/// on `rand_distr`).
pub fn standard_normal(rng: &mut StdRng) -> f32 {
    // Guard against log(0).
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Vector of i.i.d. `N(0, std²)` samples.
pub fn normal_vec(rng: &mut StdRng, len: usize, std: f32) -> Vec<f32> {
    (0..len).map(|_| standard_normal(rng) * std).collect()
}

/// Vector of i.i.d. `U(lo, hi)` samples.
pub fn uniform_vec(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Xavier/Glorot-style scale for a `(fan_in, fan_out)` linear layer.
pub fn xavier_std(fan_in: usize, fan_out: usize) -> f32 {
    (2.0 / (fan_in + fan_out) as f32).sqrt()
}

/// Samples an index from a discrete probability distribution.
///
/// # Panics
///
/// Panics if `probs` is empty.
pub fn sample_categorical(rng: &mut StdRng, probs: &[f32]) -> usize {
    assert!(!probs.is_empty(), "sample_categorical: empty distribution");
    let total: f32 = probs.iter().sum();
    let mut t = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
    for (i, &p) in probs.iter().enumerate() {
        if t < p {
            return i;
        }
        t -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = normal_vec(&mut seeded(7), 16, 1.0);
        let b = normal_vec(&mut seeded(7), 16, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = normal_vec(&mut seeded(1), 16, 1.0);
        let b = normal_vec(&mut seeded(2), 16, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = seeded(42);
        let xs = normal_vec(&mut rng, 20_000, 1.0);
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_vec_respects_bounds() {
        let xs = uniform_vec(&mut seeded(3), 1000, -0.5, 0.5);
        assert!(xs.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_std_shrinks_with_width() {
        assert!(xavier_std(1024, 1024) < xavier_std(64, 64));
    }

    #[test]
    fn categorical_sampling_tracks_distribution() {
        let mut rng = seeded(11);
        let probs = [0.1, 0.7, 0.2];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_categorical(&mut rng, &probs)] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[0]);
        let p1 = counts[1] as f32 / 10_000.0;
        assert!((p1 - 0.7).abs() < 0.03, "p1 {p1}");
    }

    #[test]
    fn categorical_handles_degenerate_distribution() {
        let mut rng = seeded(5);
        assert_eq!(sample_categorical(&mut rng, &[0.0, 0.0, 1.0]), 2);
    }
}

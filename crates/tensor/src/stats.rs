//! Small statistics helpers over `f32` slices.
//!
//! This module is also the workspace's blessed home for **float
//! reductions**: `veda-lint`'s `float-reduction` rule keeps float
//! `.sum()`/`.fold()` out of the other library crates so the summation
//! order — part of the bit-identity contract (determinism invariant
//! #2) — is centralized here. Call [`sum`] / [`max_or`] instead of
//! reducing inline.

/// Left-to-right sum in slice order — *the* sanctioned f32 summation.
///
/// Keeping every sum in slice order is what lets the engine fan work
/// across threads while staying bit-identical to the serial schedule:
/// no caller ever re-associates a reduction.
pub fn sum(xs: &[f32]) -> f32 {
    xs.iter().sum()
}

/// Left-to-right maximum starting from `init` (`init` for an empty
/// slice). NaN-free inputs assumed, as everywhere in the workspace.
pub fn max_or(init: f32, xs: &[f32]) -> f32 {
    xs.iter().cloned().fold(init, f32::max)
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance (0 for an empty slice).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Index of the maximum element (first on ties). `None` for empty input.
pub fn argmax(xs: &[f32]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element (first on ties). `None` for empty input.
pub fn argmin(xs: &[f32]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Geometric mean via the log domain (for perplexity aggregation).
/// Returns 0 for empty input.
///
/// # Panics
///
/// Panics if any element is non-positive.
pub fn geometric_mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f32 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric_mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f32).exp()
}

/// Fraction of elements strictly below `threshold`.
pub fn fraction_below(xs: &[f32], threshold: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x < threshold).count() as f32 / xs.len() as f32
}

/// The `q`-th quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// copy. `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> Option<f32> {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1], got {q}");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_is_left_to_right() {
        // A permutation-sensitive triple: (a + b) + c != a + (b + c) in f32.
        let xs = [1.0e8f32, -1.0e8, 1.0];
        assert_eq!(sum(&xs), (1.0e8f32 + -1.0e8) + 1.0);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    fn max_or_uses_init_for_empty() {
        assert_eq!(max_or(0.5, &[]), 0.5);
        assert_eq!(max_or(0.0, &[0.25, 2.0, 1.0]), 2.0);
    }

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 4.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, 0.0, 0.0, 2.0]), Some(1));
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-5);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn fraction_below_counts_strictly() {
        assert!((fraction_below(&[1.0, 2.0, 3.0, 4.0], 3.0) - 0.5).abs() < 1e-6);
        assert_eq!(fraction_below(&[], 1.0), 0.0);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.0));
        assert_eq!(quantile(&xs, 1.0), Some(3.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25).unwrap() - 2.5).abs() < 1e-6);
    }
}

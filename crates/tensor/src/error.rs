//! Error types shared by the tensor kernels.

use std::error::Error;
use std::fmt;

/// Result alias for fallible tensor operations.
pub type TensorResult<T> = Result<T, ShapeError>;

/// A dimension mismatch between operands of a tensor operation.
///
/// Carries the operation name and both offending shapes so the message is
/// actionable without a debugger.
///
/// ```
/// use veda_tensor::ShapeError;
/// let e = ShapeError::new("gemv_inner", vec![4], vec![3, 2]);
/// assert_eq!(e.to_string(), "shape mismatch in gemv_inner: left [4] vs right [3, 2]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    left: Vec<usize>,
    right: Vec<usize>,
}

impl ShapeError {
    /// Creates a shape error for operation `op` with the two offending shapes.
    pub fn new(op: &'static str, left: Vec<usize>, right: Vec<usize>) -> Self {
        Self { op, left, right }
    }

    /// The operation that rejected the operands.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Shape of the left operand.
    pub fn left(&self) -> &[usize] {
        &self.left
    }

    /// Shape of the right operand.
    pub fn right(&self) -> &[usize] {
        &self.right
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: left {:?} vs right {:?}", self.op, self.left, self.right)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_operation_and_shapes() {
        let e = ShapeError::new("matmul", vec![2, 3], vec![4, 5]);
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[4, 5]"));
    }

    #[test]
    fn accessors_round_trip() {
        let e = ShapeError::new("gemv", vec![7], vec![8, 9]);
        assert_eq!(e.op(), "gemv");
        assert_eq!(e.left(), &[7]);
        assert_eq!(e.right(), &[8, 9]);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}

//! Layer normalization and RMSNorm, plus the streaming (element-serial)
//! mean/variance reduction the SFU uses.
//!
//! The paper summarizes both softmax and layernorm into a *reduction* stage
//! (condensing the vector into a few scalars) and a *normalization* stage
//! (element-wise fixups). For layernorm the reduction produces the mean and
//! standard deviation; [`StreamingMoments`] computes both in one pass from a
//! serial element stream by accumulating `Σx` and `Σx²` — exactly what the
//! hardware does on the inner-product array's serial output.

/// Default epsilon added to the variance for numerical stability.
pub const DEFAULT_EPS: f32 = 1e-5;

/// Layer normalization: `(x − mean) / sqrt(var + eps) * gamma + beta`.
///
/// `gamma`/`beta` of length 0 are treated as all-ones / all-zeros.
///
/// # Panics
///
/// Panics if non-empty `gamma`/`beta` lengths differ from `x`.
pub fn layernorm(x: &[f32], gamma: &[f32], beta: &[f32], eps: f32) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    assert!(gamma.is_empty() || gamma.len() == x.len(), "layernorm: gamma length mismatch");
    assert!(beta.is_empty() || beta.len() == x.len(), "layernorm: beta length mismatch");
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    x.iter()
        .enumerate()
        .map(|(i, &v)| {
            let g = if gamma.is_empty() { 1.0 } else { gamma[i] };
            let b = if beta.is_empty() { 0.0 } else { beta[i] };
            (v - mean) * inv * g + b
        })
        .collect()
}

/// RMS normalization (used by Llama-family models):
/// `x / sqrt(mean(x²) + eps) * gamma`.
///
/// `gamma` of length 0 is treated as all-ones.
///
/// # Panics
///
/// Panics if non-empty `gamma` length differs from `x`.
pub fn rmsnorm(x: &[f32], gamma: &[f32], eps: f32) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    assert!(gamma.is_empty() || gamma.len() == x.len(), "rmsnorm: gamma length mismatch");
    let ms = x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    x.iter()
        .enumerate()
        .map(|(i, &v)| {
            let g = if gamma.is_empty() { 1.0 } else { gamma[i] };
            v * inv * g
        })
        .collect()
}

/// In-place variant of [`rmsnorm`]: writes the normalized vector into
/// `out`, reusing its allocation. Bit-identical to [`rmsnorm`] (same
/// mean-square reduction and per-element scaling order).
///
/// # Panics
///
/// Panics if non-empty `gamma` length differs from `x`.
pub fn rmsnorm_into(x: &[f32], gamma: &[f32], eps: f32, out: &mut Vec<f32>) {
    out.clear();
    if x.is_empty() {
        return;
    }
    assert!(gamma.is_empty() || gamma.len() == x.len(), "rmsnorm: gamma length mismatch");
    let ms = x.iter().map(|&v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    out.extend(x.iter().enumerate().map(|(i, &v)| {
        let g = if gamma.is_empty() { 1.0 } else { gamma[i] };
        v * inv * g
    }));
}

/// One-pass streaming mean/variance via `Σx` and `Σx²`, mirroring the
/// element-serial reduction unit of the SFU.
///
/// ```
/// use veda_tensor::norm::StreamingMoments;
/// let mut m = StreamingMoments::new();
/// for &x in &[1.0_f32, 2.0, 3.0, 4.0] { m.push(x); }
/// assert!((m.mean() - 2.5).abs() < 1e-6);
/// assert!((m.variance() - 1.25).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamingMoments {
    sum: f64,
    sum_sq: f64,
    count: usize,
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one element.
    pub fn push(&mut self, x: f32) {
        self.sum += f64::from(x);
        self.sum_sq += f64::from(x) * f64::from(x);
        self.count += 1;
    }

    /// Number of elements pushed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean of the pushed elements (0 when empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Population variance of the pushed elements (0 when empty).
    ///
    /// Computed as `Σx²/n − mean²`, clamped at zero against rounding.
    pub fn variance(&self) -> f32 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        ((self.sum_sq / n - mean * mean).max(0.0)) as f32
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }

    /// The VEDA voting threshold `T = a·mean − b·σ` computed from the
    /// streamed statistics.
    pub fn voting_threshold(&self, a: f32, b: f32) -> f32 {
        a * self.mean() - b * self.std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let y = layernorm(&[1.0, 2.0, 3.0, 4.0], &[], &[], 0.0);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn layernorm_applies_gamma_beta() {
        let y = layernorm(&[1.0, 3.0], &[2.0, 2.0], &[1.0, 1.0], 0.0);
        // normalized = [-1, 1]; scaled = [-2, 2]; shifted = [-1, 3]
        assert!((y[0] + 1.0).abs() < 1e-5);
        assert!((y[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let y = rmsnorm(&[3.0, 4.0], &[], 0.0);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 2.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rmsnorm_of_constant_vector() {
        let y = rmsnorm(&[2.0, 2.0, 2.0], &[], 0.0);
        for v in y {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn rmsnorm_into_is_bit_identical_to_allocating() {
        let x = [3.0_f32, -4.0, 0.5, 2.25];
        let gamma = [1.5_f32, 0.5, 2.0, 1.0];
        let mut out = vec![7.0; 9];
        rmsnorm_into(&x, &gamma, DEFAULT_EPS, &mut out);
        assert_eq!(out, rmsnorm(&x, &gamma, DEFAULT_EPS));
        rmsnorm_into(&x, &[], DEFAULT_EPS, &mut out);
        assert_eq!(out, rmsnorm(&x, &[], DEFAULT_EPS));
        rmsnorm_into(&[], &[], DEFAULT_EPS, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_inputs_give_empty_outputs() {
        assert!(layernorm(&[], &[], &[], DEFAULT_EPS).is_empty());
        assert!(rmsnorm(&[], &[], DEFAULT_EPS).is_empty());
    }

    #[test]
    fn streaming_moments_match_batch() {
        let xs = [0.5_f32, -1.0, 2.25, 0.0, 3.5];
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let n = xs.len() as f32;
        let mean = xs.iter().sum::<f32>() / n;
        let var = xs.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        assert!((m.mean() - mean).abs() < 1e-6);
        assert!((m.variance() - var).abs() < 1e-5);
        assert_eq!(m.count(), xs.len());
    }

    #[test]
    fn streaming_moments_empty_is_zero() {
        let m = StreamingMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.std_dev(), 0.0);
    }

    #[test]
    fn voting_threshold_formula() {
        let mut m = StreamingMoments::new();
        for &x in &[1.0_f32, 1.0, 1.0, 1.0] {
            m.push(x);
        }
        // mean = 1, sigma = 0 => T = a
        assert!((m.voting_threshold(0.9, 0.2) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn variance_never_negative_under_rounding() {
        let mut m = StreamingMoments::new();
        for _ in 0..1000 {
            m.push(1e-3);
        }
        assert!(m.variance() >= 0.0);
    }
}

//! # veda-tensor
//!
//! Dense linear-algebra substrate for the VEDA reproduction.
//!
//! This crate provides the numeric kernels that the rest of the workspace is
//! built on: row-major [`Matrix`] and `&[f32]` vector kernels ([`ops`]),
//! numerically-stable and *online* softmax ([`softmax`], after
//! Milakov–Gimelshein, the same formulation VEDA's element-serial reduction
//! unit implements in hardware), layer/RMS normalization ([`norm`]),
//! activation functions ([`activation`]), an IEEE-754 binary16 emulation used
//! to model the accelerator's FP16 datapath ([`fp16`]), and small statistics
//! helpers ([`stats`]) used by the voting threshold `T(i) = a·mean − b·σ`.
//!
//! Everything is deterministic and seedable; no threads, no global state.
//!
//! ## The summation-order discipline
//!
//! The workspace's central invariant — token streams are **byte-identical**
//! across decode thread counts, prefill chunk sizes and prefix-cache
//! configurations — bottoms out in this crate: f32 addition is not
//! associative, so every kernel here fixes one summation order and every
//! in-place variant (`*_into`, [`softmax::softmax_in_place`]) preserves
//! the exact order of its allocating twin. When adding a kernel, never
//! reorder an accumulation loop for speed without a pinning test; the
//! engine-level equivalence suites will catch it, but the contract lives
//! here.
//!
//! ## Example
//!
//! ```
//! use veda_tensor::{Matrix, ops, softmax};
//!
//! // q × Kᵀ as the inner-product interpretation used by VEDA:
//! let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
//! let q = [2.0, 1.0];
//! let s = ops::gemv_inner(&q, &k);       // one score per cached key
//! assert_eq!(s, vec![2.0, 1.0, 3.0]);
//! let probs = softmax::softmax(&s);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

// Every public item in the numeric substrate is documented; rustdoc
// enforces it so the API surface cannot silently rot.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod error;
pub mod fp16;
pub mod matrix;
pub mod norm;
pub mod ops;
pub mod rng;
pub mod softmax;
pub mod stats;

pub use error::{ShapeError, TensorResult};
pub use fp16::F16;
pub use matrix::Matrix;
pub use softmax::OnlineSoftmax;

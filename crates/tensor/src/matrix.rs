//! Row-major dense matrix used throughout the workspace.
//!
//! The KV cache, weight matrices and attention score matrices are all stored
//! in this format. Row-major `(l, d)` storage is exactly the "uniform KV
//! format" VEDA relies on: a whole key or value vector lives at one address
//! range, so the accelerator never needs a physical transpose.

use crate::error::{ShapeError, TensorResult};
use std::fmt;

/// A dense row-major `rows × cols` matrix of `f32`.
///
/// ```
/// use veda_tensor::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> TensorResult<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("Matrix::from_vec", vec![rows, cols], vec![data.len()]));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "inconsistent row length in Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Self { rows: n_rows, cols: n_cols, data }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `[rows, cols]`.
    pub fn shape(&self) -> [usize; 2] {
        [self.rows, self.cols]
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector (columns are strided in
    /// row-major storage; this is the access pattern the paper calls
    /// *memory access irregularity*).
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "col index {j} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|i| self.data[i * self.cols + j]).collect()
    }

    /// Appends a row to the bottom of the matrix (used by the growing KV
    /// cache during generation).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `row.len() != cols` (unless the matrix
    /// is empty, in which case the row defines the width).
    pub fn push_row(&mut self, row: &[f32]) -> TensorResult<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        } else if row.len() != self.cols {
            return Err(ShapeError::new("Matrix::push_row", vec![self.rows, self.cols], vec![row.len()]));
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }

    /// Removes row `i`, shifting later rows up (KV eviction).
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn remove_row(&mut self, i: usize) {
        assert!(i < self.rows, "row index {i} out of bounds ({} rows)", self.rows);
        let start = i * self.cols;
        self.data.drain(start..start + self.cols);
        self.rows -= 1;
    }

    /// Removes every row in `sorted_rows` in one stable compaction pass
    /// (multi-slot KV eviction: budget shrink evicts several residents in
    /// a single tick).
    ///
    /// Surviving rows keep their relative order, so the result is
    /// bit-identical to calling [`Matrix::remove_row`] once per index —
    /// but the data is moved once (O(rows · cols) total) instead of once
    /// per removal.
    ///
    /// # Panics
    ///
    /// Panics if `sorted_rows` is not strictly ascending or any index is
    /// out of bounds.
    pub fn remove_rows(&mut self, sorted_rows: &[usize]) {
        let Some(&first) = sorted_rows.first() else { return };
        assert!(
            sorted_rows.windows(2).all(|w| w[0] < w[1]),
            "remove_rows: indices must be strictly ascending, got {sorted_rows:?}"
        );
        let last = *sorted_rows.last().expect("non-empty");
        assert!(last < self.rows, "row index {last} out of bounds ({} rows)", self.rows);
        let cols = self.cols;
        let mut dst = first;
        let mut next_victim = 0;
        for src in first..self.rows {
            if next_victim < sorted_rows.len() && sorted_rows[next_victim] == src {
                next_victim += 1;
                continue;
            }
            if dst != src {
                self.data.copy_within(src * cols..(src + 1) * cols, dst * cols);
            }
            dst += 1;
        }
        self.data.truncate(dst * cols);
        self.rows = dst;
    }

    /// Reserves backing storage for at least `rows` total rows of `cols`
    /// columns (the KV cache pre-sizes for prompt + generation budget so
    /// [`Matrix::push_row`] never reallocates during decode). When the
    /// matrix already has a width, `cols` is ignored in favour of it.
    pub fn reserve_rows(&mut self, rows: usize, cols: usize) {
        let cols = if self.cols > 0 { self.cols } else { cols };
        let need = rows * cols;
        if need > self.data.len() {
            self.data.reserve(need - self.data.len());
        }
    }

    /// Returns the transposed matrix (fresh allocation).
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Dense matrix product `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(
                "Matrix::matmul",
                vec![self.rows, self.cols],
                vec![rhs.rows, rhs.cols],
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Flat row-major view of the backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for i in 0..self.rows {
                write!(f, "\n  {:?}", self.row(i))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), [3, 4]);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dim() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transposed();
        assert_eq!(t.shape(), [3, 2]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn push_and_remove_row_model_kv_growth_and_eviction() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        m.push_row(&[5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 3);
        m.remove_row(1);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[5.0, 6.0]);
    }

    #[test]
    fn remove_rows_matches_sequential_remove_row() {
        let rows: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32, 10.0 + i as f32]).collect();
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        for victims in [vec![], vec![0], vec![7], vec![1, 4, 5], vec![0, 1, 2, 3, 4, 5, 6, 7]] {
            let mut single = Matrix::from_rows(&refs);
            // Descending order keeps single-removal indices stable.
            for &v in victims.iter().rev() {
                single.remove_row(v);
            }
            let mut batch = Matrix::from_rows(&refs);
            batch.remove_rows(&victims);
            assert_eq!(batch, single, "victims {victims:?}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn remove_rows_rejects_unsorted_indices() {
        let mut m = Matrix::zeros(4, 2);
        m.remove_rows(&[2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_rows_rejects_out_of_bounds() {
        let mut m = Matrix::zeros(4, 2);
        m.remove_rows(&[1, 4]);
    }

    #[test]
    fn reserve_rows_prevents_push_row_reallocation() {
        let mut m = Matrix::default();
        m.reserve_rows(16, 3);
        let buffer = m.as_slice().as_ptr();
        for i in 0..16 {
            m.push_row(&[i as f32, 0.0, 1.0]).unwrap();
        }
        assert_eq!(m.as_slice().as_ptr(), buffer, "no reallocation during growth");
        assert_eq!(m.rows(), 16);
    }

    #[test]
    fn push_row_rejects_wrong_width() {
        let mut m = Matrix::zeros(1, 3);
        assert!(m.push_row(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn col_extracts_strided_elements() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        Matrix::zeros(2, 2).row(2);
    }
}

//! Vector kernels and the two GEMV interpretations (Fig. 4 of the paper).
//!
//! A matrix-vector product `(1,k) × (k,n) = (1,n)` can be computed two ways:
//!
//! * **inner product** ([`gemv_inner`]): the whole input vector is dotted
//!   against the matrix column by column — the output is produced element by
//!   element. VEDA uses this for `q × Kᵀ`, mapping the sequence length to
//!   time.
//! * **outer product** ([`gemv_outer`]): one input element at a time is
//!   multiplied against a whole matrix row and accumulated into a partial
//!   output vector. VEDA uses this for `s' × V`, again mapping the sequence
//!   length to time and consuming `s'` element-serially.
//!
//! Both produce bit-identical results up to f32 summation order; property
//! tests in this module check they agree within tolerance.

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch {} vs {}", x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
pub fn scale(alpha: f32, x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Element-wise addition, returning a fresh vector.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise product (Hadamard), returning a fresh vector.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Inner-product GEMV against the **rows** of `m`: `out[i] = q · m.row(i)`.
///
/// This computes `q × mᵀ` — exactly the attention-score kernel
/// `q × Kᵀ = s` with `m = K` stored in `(l, d)` format. Each output element
/// consumes one `(1, d)` row of `m`; the row count (sequence length) is free
/// to vary, which is the "flexible" dimension of the inner-product
/// interpretation.
///
/// # Panics
///
/// Panics if `q.len() != m.cols()`.
///
/// ```
/// use veda_tensor::{Matrix, ops::gemv_inner};
/// let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 0.5]]);
/// assert_eq!(gemv_inner(&[2.0, 4.0], &k), vec![2.0, 3.0]);
/// ```
pub fn gemv_inner(q: &[f32], m: &Matrix) -> Vec<f32> {
    assert_eq!(q.len(), m.cols(), "gemv_inner: q length {} vs matrix cols {}", q.len(), m.cols());
    m.iter_rows().map(|row| dot(q, row)).collect()
}

/// Outer-product GEMV against the rows of `m`: `out = Σ_i s[i] · m.row(i)`.
///
/// This computes `s × m` — exactly the attention-output kernel
/// `s' × V = o` with `m = V` stored in `(l, d)` format. Each step consumes one
/// scalar of `s` and one `(1, d)` row of `m`, accumulating a partial output of
/// the final size; the row count is again the flexible dimension.
///
/// # Panics
///
/// Panics if `s.len() != m.rows()`.
///
/// ```
/// use veda_tensor::{Matrix, ops::gemv_outer};
/// let v = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// assert_eq!(gemv_outer(&[0.25, 0.75], &v), vec![0.25, 0.75]);
/// ```
pub fn gemv_outer(s: &[f32], m: &Matrix) -> Vec<f32> {
    assert_eq!(s.len(), m.rows(), "gemv_outer: s length {} vs matrix rows {}", s.len(), m.rows());
    let mut out = vec![0.0; m.cols()];
    for (i, &si) in s.iter().enumerate() {
        axpy(si, m.row(i), &mut out);
    }
    out
}

/// In-place variant of [`gemv_inner`]: writes `q × mᵀ` into `out`,
/// reusing its allocation (the vector is cleared and refilled; capacity is
/// retained across calls). Bit-identical to [`gemv_inner`] — the summation
/// order of every dot product is unchanged.
///
/// This is the allocation-free kernel of the decode hot path
/// (`ForwardScratch` in `veda-model` threads reusable buffers through it).
///
/// # Panics
///
/// Panics if `q.len() != m.cols()`.
pub fn gemv_inner_into(q: &[f32], m: &Matrix, out: &mut Vec<f32>) {
    assert_eq!(q.len(), m.cols(), "gemv_inner: q length {} vs matrix cols {}", q.len(), m.cols());
    out.clear();
    out.extend(m.iter_rows().map(|row| dot(q, row)));
}

/// In-place variant of [`gemv_outer`]: accumulates `Σ_i s[i] · m.row(i)`
/// into `out`, reusing its allocation. Bit-identical to [`gemv_outer`] —
/// rows are accumulated in the same order.
///
/// # Panics
///
/// Panics if `s.len() != m.rows()`.
pub fn gemv_outer_into(s: &[f32], m: &Matrix, out: &mut Vec<f32>) {
    assert_eq!(s.len(), m.rows(), "gemv_outer: s length {} vs matrix rows {}", s.len(), m.rows());
    out.clear();
    out.resize(m.cols(), 0.0);
    for (i, &si) in s.iter().enumerate() {
        axpy(si, m.row(i), out);
    }
}

/// Checked variant of [`gemv_inner`].
///
/// # Errors
///
/// Returns a [`ShapeError`] instead of panicking on mismatched shapes.
pub fn try_gemv_inner(q: &[f32], m: &Matrix) -> TensorResult<Vec<f32>> {
    if q.len() != m.cols() {
        return Err(ShapeError::new("gemv_inner", vec![q.len()], vec![m.rows(), m.cols()]));
    }
    Ok(gemv_inner(q, m))
}

/// Checked variant of [`gemv_outer`].
///
/// # Errors
///
/// Returns a [`ShapeError`] instead of panicking on mismatched shapes.
pub fn try_gemv_outer(s: &[f32], m: &Matrix) -> TensorResult<Vec<f32>> {
    if s.len() != m.rows() {
        return Err(ShapeError::new("gemv_outer", vec![s.len()], vec![m.rows(), m.cols()]));
    }
    Ok(gemv_outer(s, m))
}

/// Classic column-access GEMV `out[j] = Σ_i x[i]·m[i][j]` computed per
/// column. Functionally identical to [`gemv_outer`], but touches memory in
/// the strided pattern a fixed inner-product engine would need — kept for
/// modelling and for differential testing.
pub fn gemv_by_columns(x: &[f32], m: &Matrix) -> Vec<f32> {
    assert_eq!(x.len(), m.rows(), "gemv_by_columns: x length {} vs matrix rows {}", x.len(), m.rows());
    (0..m.cols()).map(|j| x.iter().enumerate().map(|(i, &xi)| xi * m[(i, j)]).sum()).collect()
}

/// Maximum absolute difference between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![0.5, -1.0]);
    }

    #[test]
    fn inner_and_outer_agree_on_square() {
        // q × Mᵀ via inner == Mᵀ applied via outer on the transposed matrix.
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let q = [0.5, -1.0];
        let inner = gemv_inner(&q, &m); // q · each row => q × Mᵀ, len 3
        let outer = gemv_outer(&q, &m.transposed()); // q × Mᵀ via outer
        assert!(max_abs_diff(&inner, &outer) < 1e-6);
    }

    #[test]
    fn outer_equals_column_gemv() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 2.0]]);
        let s = [0.3, 0.7];
        assert!(max_abs_diff(&gemv_outer(&s, &m), &gemv_by_columns(&s, &m)) < 1e-6);
    }

    #[test]
    fn into_variants_match_allocating_kernels_bit_for_bit() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, -4.0, 0.25], &[5.0, 6.0, -0.125]]);
        let q = [0.5, -1.0, 2.0];
        let mut out = vec![9.0; 7]; // stale content must be overwritten
        gemv_inner_into(&q, &m, &mut out);
        assert_eq!(out, gemv_inner(&q, &m));
        gemv_outer_into(&q, &m, &mut out);
        assert_eq!(out, gemv_outer(&q, &m));
        // Reuse without reallocation once capacity is warm.
        let cap = out.capacity();
        gemv_outer_into(&q, &m, &mut out);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn try_variants_report_shape_errors() {
        let m = Matrix::zeros(3, 2);
        assert!(try_gemv_inner(&[1.0, 2.0, 3.0], &m).is_err());
        assert!(try_gemv_inner(&[1.0, 2.0], &m).is_ok());
        assert!(try_gemv_outer(&[1.0, 2.0], &m).is_err());
        assert!(try_gemv_outer(&[1.0, 2.0, 3.0], &m).is_ok());
    }

    #[test]
    fn norm2_of_pythagorean_triple() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn hadamard_and_add() {
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}

//! Nonlinear activations used by the feed-forward layers (GELU / ReLU /
//! SiLU, per Fig. 1 of the paper).

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Gaussian error linear unit (tanh approximation, as deployed in GPT-style
/// models).
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Sigmoid linear unit `x * sigmoid(x)` (the Llama-family FFN activation).
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Which FFN activation a model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// `max(0, x)`
    Relu,
    /// tanh-approximated GELU
    Gelu,
    /// `x · σ(x)` — Llama default
    #[default]
    Silu,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => relu(x),
            Activation::Gelu => gelu(x),
            Activation::Silu => silu(x),
        }
    }

    /// Applies the activation element-wise in place.
    pub fn apply_slice(self, xs: &mut [f32]) {
        for v in xs.iter_mut() {
            *v = self.apply(*v);
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Activation::Relu => write!(f, "relu"),
            Activation::Gelu => write!(f, "gelu"),
            Activation::Silu => write!(f, "silu"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
    }

    #[test]
    fn gelu_known_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn silu_known_points() {
        assert!(silu(0.0).abs() < 1e-7);
        assert!((silu(1.0) - 0.7311).abs() < 1e-3);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activation_enum_dispatch_matches_functions() {
        for &x in &[-2.0_f32, -0.5, 0.0, 0.5, 2.0] {
            assert_eq!(Activation::Relu.apply(x), relu(x));
            assert_eq!(Activation::Gelu.apply(x), gelu(x));
            assert_eq!(Activation::Silu.apply(x), silu(x));
        }
    }

    #[test]
    fn apply_slice_is_elementwise() {
        let mut xs = vec![-1.0, 0.0, 1.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Silu.to_string(), "silu");
        assert_eq!(Activation::default(), Activation::Silu);
    }
}

//! Numerically-stable softmax, including the *online* (element-serial)
//! formulation of Milakov & Gimelshein that VEDA's reduction unit implements.
//!
//! The hardware receives attention scores one element per cycle from the
//! inner-product-configured PE array. [`OnlineSoftmax`] mirrors that: it
//! maintains a running maximum `m` and running exponent sum
//! `Σ exp(x_i − m)`, rescaling the sum whenever the maximum improves. After
//! the last element, `max` and `exp_sum` are final — no second pass over the
//! data is required for the reduction stage.

/// Stable two-pass softmax over a slice.
///
/// Returns an empty vector for empty input.
///
/// ```
/// let p = veda_tensor::softmax::softmax(&[1.0, 2.0, 3.0]);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// ```
pub fn softmax(x: &[f32]) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|&v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// In-place variant of [`softmax`]: overwrites `x` with its softmax.
/// Bit-identical to the allocating two-pass version (same max fold, same
/// exponentiation and summation order) while performing no heap
/// allocation — the decode hot path applies it to per-head score segments
/// living in a reusable scratch buffer.
pub fn softmax_in_place(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for v in x.iter_mut() {
        *v = (*v - m).exp();
    }
    let sum: f32 = x.iter().sum();
    for v in x.iter_mut() {
        *v /= sum;
    }
}

/// Softmax of `x / temperature` (temperature > 0).
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn softmax_with_temperature(x: &[f32], temperature: f32) -> Vec<f32> {
    assert!(temperature > 0.0, "temperature must be positive, got {temperature}");
    let scaled: Vec<f32> = x.iter().map(|&v| v / temperature).collect();
    softmax(&scaled)
}

/// Log-softmax, used for NLL / perplexity evaluation.
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = x.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
    x.iter().map(|&v| v - m - log_sum).collect()
}

/// Streaming softmax reduction: one element per `push`, O(1) state.
///
/// This is the exact algorithm of the element-serial reduction unit
/// (Fig. 6 (c) of the paper): track the running max, and rescale the running
/// exponent sum when the max improves.
///
/// ```
/// use veda_tensor::OnlineSoftmax;
/// let xs = [0.3_f32, -1.0, 2.5, 0.3];
/// let mut os = OnlineSoftmax::new();
/// for &x in &xs { os.push(x); }
/// let direct: f32 = xs.iter().map(|&x| (x - 2.5).exp()).sum();
/// assert!((os.exp_sum() - direct).abs() < 1e-5);
/// assert_eq!(os.max(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSoftmax {
    max: f32,
    exp_sum: f32,
    count: usize,
}

impl OnlineSoftmax {
    /// Creates an empty reduction (max = −∞, sum = 0).
    pub fn new() -> Self {
        Self { max: f32::NEG_INFINITY, exp_sum: 0.0, count: 0 }
    }

    /// Feeds one element into the reduction.
    pub fn push(&mut self, x: f32) {
        self.count += 1;
        if x > self.max {
            // Rescale the previously accumulated sum to the new maximum.
            if self.max.is_finite() {
                self.exp_sum *= (self.max - x).exp();
            }
            self.max = x;
            self.exp_sum += 1.0; // exp(x - x)
        } else {
            self.exp_sum += (x - self.max).exp();
        }
    }

    /// Running maximum (−∞ before the first push).
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Running `Σ exp(x_i − max)`.
    pub fn exp_sum(&self) -> f32 {
        self.exp_sum
    }

    /// Number of elements pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Normalizes one element with the final statistics:
    /// `exp(x − max) / exp_sum`.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been pushed yet.
    pub fn normalize(&self, x: f32) -> f32 {
        assert!(self.count > 0, "normalize called on empty OnlineSoftmax");
        (x - self.max).exp() / self.exp_sum
    }

    /// Convenience: normalize a whole stored tile at once (what the
    /// normalization unit does to FIFO output, element-serially).
    pub fn normalize_all(&self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.normalize(x)).collect()
    }
}

impl Default for OnlineSoftmax {
    fn default() -> Self {
        Self::new()
    }
}

/// Applies softmax row-wise to a causal score matrix: row `i` only attends to
/// positions `0..=i`; entries above the diagonal are forced to exactly zero
/// probability (the `−∞` mask of the paper's Step 2).
pub fn causal_softmax_rows(scores: &mut crate::Matrix) {
    let n = scores.rows();
    for i in 0..n {
        let cols = scores.cols();
        let row = scores.row_mut(i);
        let valid = (i + 1).min(cols);
        let sm = softmax(&row[..valid]);
        row[..valid].copy_from_slice(&sm);
        for v in row[valid..].iter_mut() {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let p = softmax(&[-2.0, 0.0, 1.0, 5.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_in_place_is_bit_identical_to_allocating() {
        let xs = [0.1_f32, -3.0, 2.5, 0.1, 7.25, -0.5];
        let reference = softmax(&xs);
        let mut inplace = xs;
        softmax_in_place(&mut inplace);
        assert_eq!(inplace.as_slice(), reference.as_slice(), "must match bit for bit");
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_handles_large_magnitudes_without_nan() {
        let p = softmax(&[1e4, -1e4, 0.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = [0.5, -1.5, 3.0];
        let ls = log_softmax(&x);
        let s = softmax(&x);
        for (a, b) in ls.iter().zip(&s) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn online_matches_two_pass_softmax() {
        let xs = [0.1_f32, 0.9, -0.4, 2.0, 2.0, -5.0, 1.3];
        let mut os = OnlineSoftmax::new();
        for &x in &xs {
            os.push(x);
        }
        let reference = softmax(&xs);
        let online: Vec<f32> = xs.iter().map(|&x| os.normalize(x)).collect();
        for (a, b) in online.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn online_single_element_normalizes_to_one() {
        let mut os = OnlineSoftmax::new();
        os.push(42.0);
        assert!((os.normalize(42.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn online_descending_input_never_rescales_incorrectly() {
        let xs = [5.0_f32, 4.0, 3.0];
        let mut os = OnlineSoftmax::new();
        for &x in &xs {
            os.push(x);
        }
        let manual: f32 = xs.iter().map(|&x| (x - 5.0).exp()).sum();
        assert!((os.exp_sum() - manual).abs() < 1e-6);
    }

    #[test]
    fn causal_softmax_rows_zeroes_upper_triangle() {
        let mut m = crate::Matrix::from_rows(&[&[1.0, 9.0, 9.0], &[1.0, 1.0, 9.0], &[1.0, 1.0, 1.0]]);
        causal_softmax_rows(&mut m);
        assert!((m[(0, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m[(0, 2)], 0.0);
        assert_eq!(m[(1, 2)], 0.0);
        for i in 0..3 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn temperature_sharpens_and_flattens() {
        let x = [1.0, 2.0];
        let sharp = softmax_with_temperature(&x, 0.1);
        let flat = softmax_with_temperature(&x, 10.0);
        assert!(sharp[1] > 0.99);
        assert!((flat[1] - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        softmax_with_temperature(&[1.0], 0.0);
    }
}

//! Software emulation of IEEE-754 binary16 ("half", FP16).
//!
//! VEDA's datapath is FP16 (Table I); the KV cache, votes and activations are
//! stored as 16-bit words off-chip. This module provides a bit-exact
//! `f32 ↔ f16` conversion (round-to-nearest-even) so the simulator can model
//! quantization effects and byte-accurate memory traffic without external
//! crates.

/// An IEEE-754 binary16 value stored as its raw bit pattern.
///
/// ```
/// use veda_tensor::F16;
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// assert_eq!(F16::from_f32(65536.0), F16::INFINITY); // overflow
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2⁻¹⁴).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Constructs from a raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even, the IEEE default mode
    /// and what FP16 MAC hardware implements.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x7F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            let payload = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }

        // Unbiased exponent for f32 is exp - 127; f16 bias is 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, round to nearest even.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let mant10 = (mant >> 13) as u16;
            let round_bits = mant & 0x1FFF;
            let mut out = sign | half_exp | mant10;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (mant10 & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: correct by construction
            }
            return F16(out);
        }
        if unbiased >= -24 {
            // Subnormal range.
            // f16 subnormal significand = full_mantissa × 2^(unbiased + 1),
            // i.e. a right shift by (−unbiased − 1) ∈ [14, 23].
            let shift = (-unbiased - 1) as u32;
            let full = mant | 0x80_0000;
            let mant_sub = (full >> shift) as u16;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = full & round_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | mant_sub;
            if round_bits > halfway || (round_bits == halfway && (mant_sub & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflow to zero.
        F16(sign)
    }

    /// Converts to `f32` exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = (self.0 >> 10) & 0x1F;
        let mant = u32::from(self.0 & 0x3FF);

        let bits = if exp == 0x1F {
            // Inf/NaN.
            sign | 0x7F80_0000 | (mant << 13)
        } else if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize.
                let mut e = -14i32;
                let mut m = mant;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x3FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else {
            sign | ((u32::from(exp) + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }

    /// True if the value is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an `f32` through the FP16 grid (quantize + dequantize), modelling
/// one trip through the accelerator datapath.
pub fn quantize_f32(x: f32) -> f32 {
    F16::from_f32(x).to_f32()
}

/// Quantizes a slice through the FP16 grid in place.
pub fn quantize_slice(xs: &mut [f32]) {
    for v in xs.iter_mut() {
        *v = quantize_f32(*v);
    }
}

/// Number of bytes a slice occupies when stored as FP16 (KV-cache traffic
/// accounting).
pub fn fp16_bytes(elements: usize) -> usize {
    elements * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "failed at {i}");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let f = (2.0_f32).powi(e);
            assert_eq!(F16::from_f32(f).to_f32(), f, "failed at 2^{e}");
        }
    }

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), (2.0_f32).powi(-14));
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert_eq!(F16::from_f32(70000.0), F16::INFINITY);
        assert_eq!(F16::from_f32(-70000.0), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive f16 subnormal is 2^-24.
        let tiny = (2.0_f32).powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let sub = 3.0 * (2.0_f32).powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32((2.0_f32).powi(-30)).to_f32(), 0.0);
        // Sign of zero is preserved.
        assert_eq!(F16::from_f32(-(2.0_f32).powi(-30)).to_bits(), 0x8000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 (1+2^-10):
        // ties to even => 1.0 (mantissa 0 is even).
        let halfway = 1.0 + (2.0_f32).powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + (2.0_f32).powi(-11) + (2.0_f32).powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + (2.0_f32).powi(-10));
    }

    #[test]
    fn quantize_error_is_bounded_for_unit_range() {
        // Relative error of FP16 in the normal range is <= 2^-11.
        for i in 1..1000 {
            let x = i as f32 * 1e-3;
            let q = quantize_f32(x);
            assert!(((q - x) / x).abs() <= (2.0_f32).powi(-11) + 1e-9, "x={x} q={q}");
        }
    }

    #[test]
    fn bytes_accounting() {
        assert_eq!(fp16_bytes(4096), 8192);
    }

    #[test]
    fn quantize_slice_in_place() {
        let mut xs = vec![0.1, 0.2, 0.3];
        quantize_slice(&mut xs);
        for v in &xs {
            assert_eq!(*v, quantize_f32(*v)); // idempotent
        }
    }
}

//! End-to-end decode scheduling: maps a full Llama-shaped decoder layer
//! stack onto the PE array, SFU and HBM, producing per-token cycle reports.
//!
//! In the generation phase every linear layer is a GEMV whose weights
//! stream from HBM exactly once (no reuse across a single token), so each
//! component's time is `max(compute, memory)` under double buffering —
//! decode is memory-bound, which the report's `memory_boundedness` makes
//! visible. The attention process adds the KV cache stream and the
//! variant-dependent kernel cycles from [`crate::attention`].

use crate::arch::{ArchConfig, DataflowVariant};
use crate::attention::decode_attention_cycles;
use crate::report::CycleReport;
use veda_mem::{AccessPattern, HbmConfig, HbmModel};

/// Geometry of the model being scheduled (decode-time view; no tensors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlamaShape {
    /// Hidden dimension `D`.
    pub d_model: usize,
    /// Attention heads `H`.
    pub n_heads: usize,
    /// FFN hidden dimension.
    pub ffn_hidden: usize,
    /// Number of layers.
    pub n_layers: usize,
    /// Vocabulary size (tied LM head).
    pub vocab_size: usize,
}

impl LlamaShape {
    /// Llama-2 7B.
    pub fn llama2_7b() -> Self {
        Self { d_model: 4096, n_heads: 32, ffn_hidden: 11008, n_layers: 32, vocab_size: 32000 }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Weight bytes streamed per token in FP16 (all linear layers + LM
    /// head).
    pub fn weight_bytes_per_token(&self) -> u64 {
        let d = self.d_model as u64;
        let f = self.ffn_hidden as u64;
        let per_layer = 4 * d * d + 3 * d * f;
        2 * (self.n_layers as u64 * per_layer + d * self.vocab_size as u64)
    }

    /// KV cache bytes streamed per token at cache length `l` (read K and V
    /// across all layers, plus the new token's write).
    pub fn kv_bytes_per_token(&self, l: usize) -> u64 {
        let d = self.d_model as u64;
        let read = 2 * (l as u64) * d * 2;
        let write = 2 * d * 2;
        self.n_layers as u64 * (read + write)
    }
}

/// Scheduler producing per-token decode cycle reports.
#[derive(Debug, Clone)]
pub struct DecodeScheduler {
    arch: ArchConfig,
    shape: LlamaShape,
    hbm: HbmModel,
    variant: DataflowVariant,
}

impl DecodeScheduler {
    /// Creates a scheduler for `shape` on `arch` with the given dataflow
    /// variant and HBM configuration.
    ///
    /// # Panics
    ///
    /// Panics if the architecture is invalid or the head geometry
    /// disagrees with the architecture's attention model.
    pub fn new(arch: ArchConfig, shape: LlamaShape, hbm: HbmConfig, variant: DataflowVariant) -> Self {
        arch.validate().expect("valid architecture");
        assert_eq!(arch.head_dim, shape.head_dim(), "architecture/model head_dim mismatch");
        assert_eq!(arch.n_heads, shape.n_heads, "architecture/model head count mismatch");
        Self { arch, shape, hbm: HbmModel::new(hbm), variant }
    }

    /// VEDA on Llama-2 7B with the paper's 256 GB/s HBM.
    pub fn veda_llama7b() -> Self {
        Self::new(
            ArchConfig::veda(),
            LlamaShape::llama2_7b(),
            HbmConfig::default(),
            DataflowVariant::FlexibleElementSerial,
        )
    }

    /// The architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The model shape.
    pub fn shape(&self) -> &LlamaShape {
        &self.shape
    }

    /// Cycles of a batched linear GEMV `(1,k)×(k,n)` applied to `batch`
    /// sequences: compute runs once per sequence, chunked on the array, but
    /// the weights stream from HBM **once** for the whole batch — the
    /// bandwidth amortization that makes batched decode pay.
    fn linear(&self, report: &mut CycleReport, name: &'static str, k: usize, n: usize, batch: u64) {
        // Outer-product mapping: k temporal, n spatial (weights stream row
        // by row in (k, n) layout — sequential).
        let compute = batch * self.arch.flexible_gemv_cycles(k, n);
        let memory = self.hbm.cost(k * n * 2, AccessPattern::Sequential);
        report.add_overlapped(name, compute, memory);
    }

    /// Full decode step of a single sequence at cache length `l`.
    ///
    /// Identical to `decode_batch(&[l])`.
    pub fn decode_token(&self, l: usize) -> CycleReport {
        self.decode_batch(&[l])
    }

    /// One batched decode tick: every sequence in the batch advances by one
    /// token. Linear-layer weights stream from HBM once for the whole batch
    /// (shared across sequences), while attention — whose operand is each
    /// sequence's private KV cache — is charged per sequence at its own
    /// cache length `cache_lens[i]`, as are the per-sequence normalizations.
    ///
    /// # Panics
    ///
    /// Panics if `cache_lens` is empty.
    pub fn decode_batch(&self, cache_lens: &[usize]) -> CycleReport {
        assert!(!cache_lens.is_empty(), "decode batch must be non-empty");
        let batch = cache_lens.len() as u64;
        let d = self.shape.d_model;
        let f = self.shape.ffn_hidden;
        let mut report = CycleReport::new();

        for _ in 0..self.shape.n_layers {
            self.linear(&mut report, "qkv", d, 3 * d, batch);

            // Attention kernels + KV stream, per sequence: each sequence's
            // compute overlaps with its own cache stream.
            for &l in cache_lens {
                let attn_compute = decode_attention_cycles(&self.arch, self.variant, l);
                let kv_bytes = 2 * l * d * 2 + 2 * d * 2;
                let attn_memory = self.hbm.cost(kv_bytes, AccessPattern::Sequential);
                report.add_overlapped("attention", attn_compute, attn_memory);
            }

            self.linear(&mut report, "proj", d, d, batch);
            self.linear(&mut report, "ffn_gate_up", d, 2 * f, batch);
            self.linear(&mut report, "ffn_down", f, d, batch);

            // Layernorm/RMSnorm per sequence: O(1) drain under
            // element-serial scheduling; a blocking
            // reduction+normalization otherwise.
            if self.variant.element_serial() {
                report.add_exposed_sfu("norm", batch * 2 * self.arch.calibration.element_serial_drain);
            } else {
                let per_norm = (d as u64).div_ceil(2) * 2; // reduce + normalize at 2/cycle
                report.add_exposed_sfu("norm", batch * 2 * per_norm);
            }
        }
        self.linear(&mut report, "lm_head", d, self.shape.vocab_size, batch);
        report
    }

    /// Batched decode throughput in tokens/second: one tick advances every
    /// sequence, so the tick produces `cache_lens.len()` tokens.
    pub fn batched_tokens_per_second(&self, cache_lens: &[usize]) -> f64 {
        let report = self.decode_batch(cache_lens);
        cache_lens.len() as f64 / report.seconds(self.arch.clock_ghz)
    }

    /// Decode throughput in tokens/second at cache length `l`.
    pub fn tokens_per_second(&self, l: usize) -> f64 {
        let report = self.decode_token(l);
        1.0 / report.seconds(self.arch.clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama7b_weight_stream_is_about_13gb() {
        let s = LlamaShape::llama2_7b();
        let gb = s.weight_bytes_per_token() as f64 / 1e9;
        assert!((12.0..15.0).contains(&gb), "weight stream {gb} GB");
    }

    #[test]
    fn decode_is_memory_bound() {
        let sched = DecodeScheduler::veda_llama7b();
        let report = sched.decode_token(512);
        assert!(report.memory_boundedness() > 0.9, "boundedness {}", report.memory_boundedness());
    }

    #[test]
    fn veda_7b_throughput_matches_paper_scale() {
        // Paper: one VEDA sustains 18.6 tokens/s on Llama-2 7B with
        // 256 GB/s HBM. A bandwidth-bound model must land in that range.
        let sched = DecodeScheduler::veda_llama7b();
        let tps = sched.tokens_per_second(512);
        assert!((12.0..25.0).contains(&tps), "tokens/s {tps}");
    }

    #[test]
    fn throughput_drops_as_cache_grows() {
        let sched = DecodeScheduler::veda_llama7b();
        assert!(sched.tokens_per_second(128) > sched.tokens_per_second(4096));
    }

    #[test]
    fn element_serial_variant_is_fastest_end_to_end() {
        let mk =
            |v| DecodeScheduler::new(ArchConfig::veda(), LlamaShape::llama2_7b(), HbmConfig::default(), v);
        let base = mk(DataflowVariant::Baseline).decode_token(1024).total_cycles;
        let f = mk(DataflowVariant::Flexible).decode_token(1024).total_cycles;
        let fe = mk(DataflowVariant::FlexibleElementSerial).decode_token(1024).total_cycles;
        assert!(base > f && f > fe, "{base} / {f} / {fe}");
    }

    #[test]
    fn kv_bytes_grow_linearly() {
        let s = LlamaShape::llama2_7b();
        let a = s.kv_bytes_per_token(100);
        let b = s.kv_bytes_per_token(200);
        assert!(b > a && b < 2 * a + s.n_layers as u64 * s.d_model as u64 * 8);
    }

    #[test]
    #[should_panic(expected = "head_dim mismatch")]
    fn mismatched_geometry_rejected() {
        let mut arch = ArchConfig::veda();
        arch.head_dim = 64;
        DecodeScheduler::new(arch, LlamaShape::llama2_7b(), HbmConfig::default(), DataflowVariant::Baseline);
    }

    #[test]
    fn report_components_cover_all_layers() {
        let sched = DecodeScheduler::veda_llama7b();
        let report = sched.decode_token(16);
        // 6 components per layer × 32 layers + lm_head.
        assert_eq!(report.components.len(), 6 * 32 + 1);
    }

    #[test]
    fn single_sequence_batch_equals_decode_token() {
        let sched = DecodeScheduler::veda_llama7b();
        assert_eq!(sched.decode_token(512), sched.decode_batch(&[512]));
    }

    #[test]
    fn batching_amortizes_weight_streaming() {
        // One 8-sequence tick streams the weights once instead of 8 times,
        // so it is cheaper than 8 single-sequence ticks — but dearer than
        // one, and the gain is bounded: the 128-MAC array goes
        // compute-bound once the batch multiplies the GEMV work.
        let sched = DecodeScheduler::veda_llama7b();
        let lens = [512usize; 8];
        let tick = sched.decode_batch(&lens).total_cycles;
        let single = sched.decode_token(512).total_cycles;
        assert!(tick > single, "a batch tick cannot be cheaper than one sequence");
        assert!(tick < 8 * single * 9 / 10, "batching saved too little: {tick} vs 8×{single}");
        // Per-token throughput improves accordingly.
        assert!(sched.batched_tokens_per_second(&lens) > 1.2 * sched.tokens_per_second(512));
        // A wider array relieves the compute bound and unlocks more of the
        // bandwidth amortization.
        let mut wide_arch = ArchConfig::veda();
        wide_arch.pe_lanes *= 8;
        let wide = DecodeScheduler::new(
            wide_arch,
            LlamaShape::llama2_7b(),
            HbmConfig::default(),
            DataflowVariant::FlexibleElementSerial,
        );
        let wide_tick = wide.decode_batch(&lens).total_cycles;
        let wide_single = wide.decode_token(512).total_cycles;
        assert!(
            wide_tick < 8 * wide_single / 2,
            "wide array should amortize better: {wide_tick} vs 8×{wide_single}"
        );
    }

    #[test]
    fn mixed_length_batch_charges_each_sequence_its_own_attention() {
        let sched = DecodeScheduler::veda_llama7b();
        let short = sched.decode_batch(&[128, 128]).total_cycles;
        let mixed = sched.decode_batch(&[128, 4096]).total_cycles;
        assert!(mixed > short, "longer cache in the batch must cost more");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_panics() {
        DecodeScheduler::veda_llama7b().decode_batch(&[]);
    }
}

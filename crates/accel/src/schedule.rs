//! End-to-end decode scheduling: maps a full Llama-shaped decoder layer
//! stack onto the PE array, SFU and HBM, producing per-token cycle reports.
//!
//! In the generation phase every linear layer is a GEMV whose weights
//! stream from HBM exactly once (no reuse across a single token), so each
//! component's time is `max(compute, memory)` under double buffering —
//! decode is memory-bound, which the report's `memory_boundedness` makes
//! visible. The attention process adds the KV cache stream and the
//! variant-dependent kernel cycles from [`crate::attention`].

use crate::arch::{ArchConfig, DataflowVariant};
use crate::attention::{chunked_prefill_attention_cycles, decode_attention_cycles};
use crate::report::CycleReport;
use veda_mem::{AccessPattern, HbmConfig, HbmModel};

/// One prefilling sequence's share of a mixed tick: `tokens` consecutive
/// prompt tokens appended to a cache already holding `start_len` entries
/// (Sarathi/vLLM-style chunked prefill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillChunk {
    /// Cache length before the chunk (prompt tokens already consumed).
    pub start_len: usize,
    /// Prompt tokens this chunk consumes (must be ≥ 1).
    pub tokens: usize,
    /// Whether this chunk consumes the prompt's final token — only then
    /// does the sequence need the LM head (its logits seed the first
    /// decode step); mid-prompt chunks skip it.
    pub completes_prompt: bool,
}

/// Geometry of the model being scheduled (decode-time view; no tensors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlamaShape {
    /// Hidden dimension `D`.
    pub d_model: usize,
    /// Attention heads `H`.
    pub n_heads: usize,
    /// FFN hidden dimension.
    pub ffn_hidden: usize,
    /// Number of layers.
    pub n_layers: usize,
    /// Vocabulary size (tied LM head).
    pub vocab_size: usize,
}

impl LlamaShape {
    /// Llama-2 7B.
    pub fn llama2_7b() -> Self {
        Self { d_model: 4096, n_heads: 32, ffn_hidden: 11008, n_layers: 32, vocab_size: 32000 }
    }

    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Weight bytes streamed per token in FP16 (all linear layers + LM
    /// head).
    pub fn weight_bytes_per_token(&self) -> u64 {
        let d = self.d_model as u64;
        let f = self.ffn_hidden as u64;
        let per_layer = 4 * d * d + 3 * d * f;
        2 * (self.n_layers as u64 * per_layer + d * self.vocab_size as u64)
    }

    /// KV cache bytes one sequence streams in **one layer** for one token
    /// at cache length `l`: read K and V at `l` entries, write the new
    /// token's K/V pair. The single source of the KV byte layout — the
    /// all-layer and chunk variants below, and the scheduler's per-layer
    /// attention costing, all derive from it.
    pub fn layer_kv_bytes(&self, l: usize) -> u64 {
        let d = self.d_model as u64;
        2 * (l as u64) * d * 2 + 2 * d * 2
    }

    /// KV cache bytes one sequence streams in **one layer** for a
    /// chunked-prefill chunk of `tokens` prompt tokens appended to a
    /// cache of `start_len` entries: each row reads the cache at its own
    /// (growing) length and writes its K/V pair, summed token-serially.
    pub fn layer_prefill_kv_bytes(&self, start_len: usize, tokens: usize) -> u64 {
        (0..tokens).map(|i| self.layer_kv_bytes(start_len + i)).sum()
    }

    /// KV cache bytes streamed per token at cache length `l` (read K and V
    /// across all layers, plus the new token's write).
    pub fn kv_bytes_per_token(&self, l: usize) -> u64 {
        self.n_layers as u64 * self.layer_kv_bytes(l)
    }

    /// KV cache bytes streamed by a chunked-prefill chunk across all
    /// layers (see [`LlamaShape::layer_prefill_kv_bytes`]).
    pub fn prefill_kv_bytes(&self, start_len: usize, tokens: usize) -> u64 {
        self.n_layers as u64 * self.layer_prefill_kv_bytes(start_len, tokens)
    }
}

/// Scheduler producing per-token decode cycle reports.
#[derive(Debug, Clone)]
pub struct DecodeScheduler {
    arch: ArchConfig,
    shape: LlamaShape,
    hbm: HbmModel,
    variant: DataflowVariant,
}

impl DecodeScheduler {
    /// Creates a scheduler for `shape` on `arch` with the given dataflow
    /// variant and HBM configuration.
    ///
    /// # Panics
    ///
    /// Panics if the architecture is invalid or the head geometry
    /// disagrees with the architecture's attention model.
    pub fn new(arch: ArchConfig, shape: LlamaShape, hbm: HbmConfig, variant: DataflowVariant) -> Self {
        arch.validate().expect("valid architecture");
        assert_eq!(arch.head_dim, shape.head_dim(), "architecture/model head_dim mismatch");
        assert_eq!(arch.n_heads, shape.n_heads, "architecture/model head count mismatch");
        Self { arch, shape, hbm: HbmModel::new(hbm), variant }
    }

    /// VEDA on Llama-2 7B with the paper's 256 GB/s HBM.
    pub fn veda_llama7b() -> Self {
        Self::new(
            ArchConfig::veda(),
            LlamaShape::llama2_7b(),
            HbmConfig::default(),
            DataflowVariant::FlexibleElementSerial,
        )
    }

    /// The architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// The model shape.
    pub fn shape(&self) -> &LlamaShape {
        &self.shape
    }

    /// Cycles of a batched linear GEMV `(1,k)×(k,n)` applied to `tokens`
    /// input rows (one per decode sequence, plus every prompt token of the
    /// tick's prefill chunks): compute runs once per row, chunked on the
    /// array, but the weights stream from HBM **once** for the whole batch
    /// — the bandwidth amortization that makes batched decode pay and that
    /// chunked prefill piggybacks on.
    fn linear(&self, report: &mut CycleReport, name: &'static str, k: usize, n: usize, tokens: u64) {
        // Outer-product mapping: k temporal, n spatial (weights stream row
        // by row in (k, n) layout — sequential).
        let compute = tokens * self.arch.flexible_gemv_cycles(k, n);
        let memory = self.hbm.cost(k * n * 2, AccessPattern::Sequential);
        report.add_overlapped(name, compute, memory);
    }

    /// Full decode step of a single sequence at cache length `l`.
    ///
    /// Identical to `decode_batch(&[l])`.
    pub fn decode_token(&self, l: usize) -> CycleReport {
        self.decode_batch(&[l])
    }

    /// One batched decode tick: every sequence in the batch advances by one
    /// token. Equivalent to [`DecodeScheduler::mixed_batch`] with no
    /// prefill chunks (and costed identically).
    ///
    /// # Panics
    ///
    /// Panics if `cache_lens` is empty.
    pub fn decode_batch(&self, cache_lens: &[usize]) -> CycleReport {
        assert!(!cache_lens.is_empty(), "decode batch must be non-empty");
        self.mixed_batch(&[], cache_lens)
    }

    /// One *mixed* tick: every decode sequence advances by one token
    /// **and** every prefilling sequence consumes its [`PrefillChunk`] of
    /// prompt tokens. Linear-layer weights stream from HBM once for the
    /// whole tick, shared across both phases (one GEMV pass per input row:
    /// one row per decode sequence, one per prompt token); attention —
    /// whose operand is each sequence's private KV cache — is charged per
    /// decode sequence at its own cache length and per prefill chunk
    /// token-serially at its growing cache lengths, as are the
    /// per-row normalizations. The LM head runs for decode rows and for
    /// chunks that complete their prompt (their logits seed the first
    /// decode step); mid-prompt chunks skip it.
    ///
    /// With `prefill` empty this is exactly the pre-chunking
    /// `decode_batch` costing — the byte-identity the engine's
    /// instant-prefill compatibility mode relies on.
    ///
    /// # Panics
    ///
    /// Panics if both `prefill` and `cache_lens` are empty, or if any
    /// chunk has zero tokens.
    pub fn mixed_batch(&self, prefill: &[PrefillChunk], cache_lens: &[usize]) -> CycleReport {
        assert!(!prefill.is_empty() || !cache_lens.is_empty(), "mixed tick must be non-empty");
        assert!(prefill.iter().all(|c| c.tokens > 0), "prefill chunks must consume at least one token");
        let prefill_tokens: u64 = prefill.iter().map(|c| c.tokens as u64).sum();
        let tokens = cache_lens.len() as u64 + prefill_tokens;
        let lm_rows = cache_lens.len() as u64 + prefill.iter().filter(|c| c.completes_prompt).count() as u64;
        let d = self.shape.d_model;
        let f = self.shape.ffn_hidden;
        let mut report = CycleReport::new();

        for _ in 0..self.shape.n_layers {
            self.linear(&mut report, "qkv", d, 3 * d, tokens);

            // Attention kernels + KV stream, per sequence: each sequence's
            // compute overlaps with its own cache stream.
            for &l in cache_lens {
                let attn_compute = decode_attention_cycles(&self.arch, self.variant, l);
                let kv_bytes = self.shape.layer_kv_bytes(l);
                let attn_memory = self.hbm.cost(kv_bytes as usize, AccessPattern::Sequential);
                report.add_overlapped("attention", attn_compute, attn_memory);
            }
            for chunk in prefill {
                let attn_compute =
                    chunked_prefill_attention_cycles(&self.arch, self.variant, chunk.start_len, chunk.tokens);
                let kv_bytes = self.shape.layer_prefill_kv_bytes(chunk.start_len, chunk.tokens);
                let attn_memory = self.hbm.cost(kv_bytes as usize, AccessPattern::Sequential);
                report.add_overlapped("prefill_attention", attn_compute, attn_memory);
            }

            self.linear(&mut report, "proj", d, d, tokens);
            self.linear(&mut report, "ffn_gate_up", d, 2 * f, tokens);
            self.linear(&mut report, "ffn_down", f, d, tokens);

            // Layernorm/RMSnorm per input row: O(1) drain under
            // element-serial scheduling; a blocking
            // reduction+normalization otherwise.
            if self.variant.element_serial() {
                report.add_exposed_sfu("norm", tokens * 2 * self.arch.calibration.element_serial_drain);
            } else {
                let per_norm = (d as u64).div_ceil(2) * 2; // reduce + normalize at 2/cycle
                report.add_exposed_sfu("norm", tokens * 2 * per_norm);
            }
        }
        // No sequence needs logits this tick (all chunks are mid-prompt):
        // the LM head neither computes nor streams its weights.
        if lm_rows > 0 {
            self.linear(&mut report, "lm_head", d, self.shape.vocab_size, lm_rows);
        }
        report
    }

    /// Batched decode throughput in tokens/second: one tick advances every
    /// sequence, so the tick produces `cache_lens.len()` tokens.
    pub fn batched_tokens_per_second(&self, cache_lens: &[usize]) -> f64 {
        let report = self.decode_batch(cache_lens);
        cache_lens.len() as f64 / report.seconds(self.arch.clock_ghz)
    }

    /// Decode throughput in tokens/second at cache length `l`.
    pub fn tokens_per_second(&self, l: usize) -> f64 {
        let report = self.decode_token(l);
        1.0 / report.seconds(self.arch.clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama7b_weight_stream_is_about_13gb() {
        let s = LlamaShape::llama2_7b();
        let gb = s.weight_bytes_per_token() as f64 / 1e9;
        assert!((12.0..15.0).contains(&gb), "weight stream {gb} GB");
    }

    #[test]
    fn decode_is_memory_bound() {
        let sched = DecodeScheduler::veda_llama7b();
        let report = sched.decode_token(512);
        assert!(report.memory_boundedness() > 0.9, "boundedness {}", report.memory_boundedness());
    }

    #[test]
    fn veda_7b_throughput_matches_paper_scale() {
        // Paper: one VEDA sustains 18.6 tokens/s on Llama-2 7B with
        // 256 GB/s HBM. A bandwidth-bound model must land in that range.
        let sched = DecodeScheduler::veda_llama7b();
        let tps = sched.tokens_per_second(512);
        assert!((12.0..25.0).contains(&tps), "tokens/s {tps}");
    }

    #[test]
    fn throughput_drops_as_cache_grows() {
        let sched = DecodeScheduler::veda_llama7b();
        assert!(sched.tokens_per_second(128) > sched.tokens_per_second(4096));
    }

    #[test]
    fn element_serial_variant_is_fastest_end_to_end() {
        let mk =
            |v| DecodeScheduler::new(ArchConfig::veda(), LlamaShape::llama2_7b(), HbmConfig::default(), v);
        let base = mk(DataflowVariant::Baseline).decode_token(1024).total_cycles;
        let f = mk(DataflowVariant::Flexible).decode_token(1024).total_cycles;
        let fe = mk(DataflowVariant::FlexibleElementSerial).decode_token(1024).total_cycles;
        assert!(base > f && f > fe, "{base} / {f} / {fe}");
    }

    #[test]
    fn kv_bytes_grow_linearly() {
        let s = LlamaShape::llama2_7b();
        let a = s.kv_bytes_per_token(100);
        let b = s.kv_bytes_per_token(200);
        assert!(b > a && b < 2 * a + s.n_layers as u64 * s.d_model as u64 * 8);
    }

    #[test]
    #[should_panic(expected = "head_dim mismatch")]
    fn mismatched_geometry_rejected() {
        let mut arch = ArchConfig::veda();
        arch.head_dim = 64;
        DecodeScheduler::new(arch, LlamaShape::llama2_7b(), HbmConfig::default(), DataflowVariant::Baseline);
    }

    #[test]
    fn report_components_cover_all_layers() {
        let sched = DecodeScheduler::veda_llama7b();
        let report = sched.decode_token(16);
        // 6 components per layer × 32 layers + lm_head.
        assert_eq!(report.components.len(), 6 * 32 + 1);
    }

    #[test]
    fn single_sequence_batch_equals_decode_token() {
        let sched = DecodeScheduler::veda_llama7b();
        assert_eq!(sched.decode_token(512), sched.decode_batch(&[512]));
    }

    #[test]
    fn batching_amortizes_weight_streaming() {
        // One 8-sequence tick streams the weights once instead of 8 times,
        // so it is cheaper than 8 single-sequence ticks — but dearer than
        // one, and the gain is bounded: the 128-MAC array goes
        // compute-bound once the batch multiplies the GEMV work.
        let sched = DecodeScheduler::veda_llama7b();
        let lens = [512usize; 8];
        let tick = sched.decode_batch(&lens).total_cycles;
        let single = sched.decode_token(512).total_cycles;
        assert!(tick > single, "a batch tick cannot be cheaper than one sequence");
        assert!(tick < 8 * single * 9 / 10, "batching saved too little: {tick} vs 8×{single}");
        // Per-token throughput improves accordingly.
        assert!(sched.batched_tokens_per_second(&lens) > 1.2 * sched.tokens_per_second(512));
        // A wider array relieves the compute bound and unlocks more of the
        // bandwidth amortization.
        let mut wide_arch = ArchConfig::veda();
        wide_arch.pe_lanes *= 8;
        let wide = DecodeScheduler::new(
            wide_arch,
            LlamaShape::llama2_7b(),
            HbmConfig::default(),
            DataflowVariant::FlexibleElementSerial,
        );
        let wide_tick = wide.decode_batch(&lens).total_cycles;
        let wide_single = wide.decode_token(512).total_cycles;
        assert!(
            wide_tick < 8 * wide_single / 2,
            "wide array should amortize better: {wide_tick} vs 8×{wide_single}"
        );
    }

    #[test]
    fn mixed_length_batch_charges_each_sequence_its_own_attention() {
        let sched = DecodeScheduler::veda_llama7b();
        let short = sched.decode_batch(&[128, 128]).total_cycles;
        let mixed = sched.decode_batch(&[128, 4096]).total_cycles;
        assert!(mixed > short, "longer cache in the batch must cost more");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_panics() {
        DecodeScheduler::veda_llama7b().decode_batch(&[]);
    }

    #[test]
    fn mixed_batch_with_no_prefill_is_exactly_decode_batch() {
        let sched = DecodeScheduler::veda_llama7b();
        for lens in [vec![512], vec![128, 4096], vec![64; 8]] {
            assert_eq!(sched.mixed_batch(&[], &lens), sched.decode_batch(&lens));
        }
    }

    #[test]
    fn prefill_chunks_make_the_tick_dearer() {
        let sched = DecodeScheduler::veda_llama7b();
        let decode_only = sched.decode_batch(&[512, 512]).total_cycles;
        let chunk = PrefillChunk { start_len: 0, tokens: 64, completes_prompt: false };
        let mixed = sched.mixed_batch(&[chunk], &[512, 512]).total_cycles;
        assert!(mixed > decode_only, "a prefill chunk must add work: {mixed} vs {decode_only}");
        let bigger = PrefillChunk { start_len: 0, tokens: 256, completes_prompt: false };
        let heavier = sched.mixed_batch(&[bigger], &[512, 512]).total_cycles;
        assert!(heavier > mixed, "larger chunks cost more: {heavier} vs {mixed}");
    }

    #[test]
    fn mixed_batch_shares_one_weight_stream() {
        // A mixed tick streams the linear weights once, so it is cheaper
        // than costing prefill and decode as separate ticks. On the paper's
        // 128-MAC array the GEMVs are compute-bound, so the saving is
        // modest; a wider array exposes the full bandwidth amortization
        // (same reasoning as `batching_amortizes_weight_streaming`).
        let chunk = PrefillChunk { start_len: 0, tokens: 8, completes_prompt: false };
        let sched = DecodeScheduler::veda_llama7b();
        let mixed = sched.mixed_batch(&[chunk], &[512]).total_cycles;
        let separate =
            sched.mixed_batch(&[chunk], &[]).total_cycles + sched.decode_batch(&[512]).total_cycles;
        assert!(mixed < separate, "one weight stream must beat two: {mixed} vs {separate}");

        let mut wide_arch = ArchConfig::veda();
        wide_arch.pe_lanes *= 8;
        let wide = DecodeScheduler::new(
            wide_arch,
            LlamaShape::llama2_7b(),
            HbmConfig::default(),
            DataflowVariant::FlexibleElementSerial,
        );
        let mixed = wide.mixed_batch(&[chunk], &[512]).total_cycles;
        let separate = wide.mixed_batch(&[chunk], &[]).total_cycles + wide.decode_batch(&[512]).total_cycles;
        assert!(mixed < separate * 3 / 4, "wide array should amortize better: {mixed} vs {separate}");
    }

    #[test]
    fn completing_chunk_pays_the_lm_head() {
        let sched = DecodeScheduler::veda_llama7b();
        let mid = PrefillChunk { start_len: 128, tokens: 32, completes_prompt: false };
        let last = PrefillChunk { completes_prompt: true, ..mid };
        let without = sched.mixed_batch(&[mid], &[]).total_cycles;
        let with = sched.mixed_batch(&[last], &[]).total_cycles;
        assert!(with > without, "the completing chunk must charge the LM head: {with} vs {without}");
    }

    #[test]
    fn prefill_only_tick_is_valid_and_empty_mixed_tick_panics() {
        let sched = DecodeScheduler::veda_llama7b();
        let chunk = PrefillChunk { start_len: 0, tokens: 16, completes_prompt: true };
        assert!(sched.mixed_batch(&[chunk], &[]).total_cycles > 0);
        let r = std::panic::catch_unwind(|| sched.mixed_batch(&[], &[]));
        assert!(r.is_err(), "a tick with no work must panic");
    }

    #[test]
    fn prefill_kv_bytes_sum_token_serially() {
        let s = LlamaShape::llama2_7b();
        assert_eq!(s.prefill_kv_bytes(10, 0), 0);
        assert_eq!(
            s.prefill_kv_bytes(10, 3),
            s.kv_bytes_per_token(10) + s.kv_bytes_per_token(11) + s.kv_bytes_per_token(12)
        );
    }
}

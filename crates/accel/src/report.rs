//! Cycle accounting reports.

/// Cycle breakdown of a scheduled operation or step.
///
/// `total_cycles` is the critical-path time; compute and memory overlap
/// under double buffering, so `total = Σ max(compute_i, memory_i) + exposed
/// SFU` across components.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// PE-array busy cycles.
    pub compute_cycles: u64,
    /// Off-chip memory cycles.
    pub memory_cycles: u64,
    /// SFU cycles *not* hidden behind compute (0 under element-serial
    /// scheduling except the O(1) drain).
    pub exposed_sfu_cycles: u64,
    /// Critical-path cycles.
    pub total_cycles: u64,
    /// Named component contributions to the critical path.
    pub components: Vec<(&'static str, u64)>,
}

impl CycleReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component whose compute and memory overlap: the critical
    /// path grows by `max(compute, memory)`.
    pub fn add_overlapped(&mut self, name: &'static str, compute: u64, memory: u64) {
        self.compute_cycles += compute;
        self.memory_cycles += memory;
        let contribution = compute.max(memory);
        self.total_cycles += contribution;
        self.components.push((name, contribution));
    }

    /// Adds serial (non-overlappable) SFU cycles to the critical path.
    pub fn add_exposed_sfu(&mut self, name: &'static str, cycles: u64) {
        self.exposed_sfu_cycles += cycles;
        self.total_cycles += cycles;
        self.components.push((name, cycles));
    }

    /// Merges another report (sequential composition).
    pub fn merge(&mut self, other: &CycleReport) {
        self.compute_cycles += other.compute_cycles;
        self.memory_cycles += other.memory_cycles;
        self.exposed_sfu_cycles += other.exposed_sfu_cycles;
        self.total_cycles += other.total_cycles;
        self.components.extend(other.components.iter().copied());
    }

    /// PE utilization: compute cycles over total.
    pub fn pe_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.compute_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Memory-boundedness: memory cycles over total.
    pub fn memory_boundedness(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.memory_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Wall-clock seconds at `clock_ghz`.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.total_cycles as f64 / (clock_ghz * 1e9)
    }
}

impl std::fmt::Display for CycleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "total {} cycles (compute {}, memory {}, exposed SFU {})",
            self.total_cycles, self.compute_cycles, self.memory_cycles, self.exposed_sfu_cycles
        )?;
        for (name, cycles) in &self.components {
            writeln!(f, "  {name:<24} {cycles}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapped_components_take_the_max() {
        let mut r = CycleReport::new();
        r.add_overlapped("qkv", 100, 400);
        r.add_overlapped("attn", 300, 100);
        assert_eq!(r.total_cycles, 400 + 300);
        assert_eq!(r.compute_cycles, 400);
        assert_eq!(r.memory_cycles, 500);
    }

    #[test]
    fn exposed_sfu_is_serial() {
        let mut r = CycleReport::new();
        r.add_overlapped("gemv", 100, 50);
        r.add_exposed_sfu("softmax", 30);
        assert_eq!(r.total_cycles, 130);
        assert_eq!(r.exposed_sfu_cycles, 30);
    }

    #[test]
    fn merge_is_sequential_composition() {
        let mut a = CycleReport::new();
        a.add_overlapped("x", 10, 5);
        let mut b = CycleReport::new();
        b.add_overlapped("y", 20, 30);
        a.merge(&b);
        assert_eq!(a.total_cycles, 40);
        assert_eq!(a.components.len(), 2);
    }

    #[test]
    fn utilization_ratios() {
        let mut r = CycleReport::new();
        r.add_overlapped("m", 50, 100);
        assert!((r.pe_utilization() - 0.5).abs() < 1e-9);
        assert!((r.memory_boundedness() - 1.0).abs() < 1e-9);
        assert_eq!(CycleReport::new().pe_utilization(), 0.0);
    }

    #[test]
    fn seconds_at_clock() {
        let mut r = CycleReport::new();
        r.add_overlapped("m", 1_000_000_000, 0);
        assert!((r.seconds(1.0) - 1.0).abs() < 1e-9);
        assert!((r.seconds(2.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_lists_components() {
        let mut r = CycleReport::new();
        r.add_overlapped("ffn", 10, 2);
        let s = r.to_string();
        assert!(s.contains("ffn"));
        assert!(s.contains("total 10 cycles"));
    }
}

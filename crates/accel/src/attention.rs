//! Cycle model of the attention process under the three dataflow variants
//! (the Fig. 8 center ablation) and of the voting-eviction speedup
//! (Fig. 8 right).
//!
//! Per decode token at cache length `l`, head dimension `d`, the model
//! charges, per head:
//!
//! | component | Baseline | +F | +F+E |
//! |---|---|---|---|
//! | `q×Kᵀ` | `l·ceil(d/P)` | `l·ceil(d/P)` | `l·ceil(d/P)` |
//! | softmax | fill + `l/ω` blocking | fill + `l/ω` blocking | O(1) drain |
//! | `s'×V` | `ceil(l/P)·P·ceil(d/P)·γ` | `l·ceil(d/P)` | `l·ceil(d/P)` |
//! | V upkeep | `d/8` | — | — |
//!
//! `P` = MACs, `γ` = the baseline's V-gather slowdown, `ω` = the residual
//! softmax throughput after cross-head overlap, "fill" = the blocking
//! softmax pipeline latency. See [`crate::arch::BaselineCalibration`] for
//! the constants and their justification. The baseline additionally pads
//! `l` to whole `P`-chunks (fixed epoch granularity) in `s'×V` — the
//! "k = 256 → 257 doubles the epochs" pathology of Section I.

use crate::arch::{ArchConfig, DataflowVariant};

/// Cycles of one head's attention at cache length `l` for a decode step.
pub fn decode_attention_cycles_per_head(arch: &ArchConfig, variant: DataflowVariant, l: usize) -> u64 {
    if l == 0 {
        return 0;
    }
    let d = arch.head_dim;
    let p = arch.macs();
    let cal = &arch.calibration;
    let chunks_d = (d as u64).div_ceil(p as u64);

    // q × Kᵀ: identical in all variants (the fixed tree also fits d).
    let qk = l as u64 * chunks_d;

    // softmax.
    let softmax = if variant.element_serial() {
        cal.element_serial_drain
    } else {
        cal.softmax_fill_cycles + (l as u64).div_ceil(cal.softmax_residual_throughput.max(1))
    };

    // s' × V.
    let sv = if variant.flexible() {
        l as u64 * chunks_d
    } else {
        // Fixed inner product over k = l: epochs of P with padding, plus the
        // half-rate V gather path.
        let padded = (l as u64).div_ceil(p as u64) * p as u64;
        ((padded * chunks_d) as f64 * cal.gather_slowdown).round() as u64
    };

    // Transposed-V maintenance (baseline only).
    let upkeep = if variant.flexible() { 0 } else { cal.transpose_maintenance_per_head };

    qk + softmax + sv + upkeep
}

/// Cycles of a full decode-step attention (all heads) at cache length `l`.
///
/// Softmax fill/drain is paid once per head but overlaps across heads are
/// already folded into the calibration constants, so heads simply sum.
pub fn decode_attention_cycles(arch: &ArchConfig, variant: DataflowVariant, l: usize) -> u64 {
    arch.n_heads as u64 * decode_attention_cycles_per_head(arch, variant, l)
}

/// Cycles of the prefill attention for a prompt of length `p_len`
/// (per head): row `i` attends to `i+1` keys. The flexible variants skip
/// the causal upper triangle (Section V); the baseline's fixed GEMM kernel
/// computes full rows. The whole-prompt prefill is exactly a chunked
/// prefill starting from an empty cache.
pub fn prefill_attention_cycles_per_head(arch: &ArchConfig, variant: DataflowVariant, p_len: usize) -> u64 {
    chunked_prefill_attention_cycles_per_head(arch, variant, 0, p_len)
}

/// Cycles of one head's attention for a *chunked-prefill* chunk: `tokens`
/// consecutive prompt rows appended to a cache already holding
/// `start_len` entries. Row `i` of the chunk attends causally to
/// `start_len + i + 1` keys under the flexible variants; the baseline's
/// fixed GEMM kernel computes full `start_len + tokens` rows. Within the
/// chunk the softmax of row `i` overlaps with row `i+1`'s GEMVs in *all*
/// variants (rows are independent); only the per-row drain differs.
pub fn chunked_prefill_attention_cycles_per_head(
    arch: &ArchConfig,
    variant: DataflowVariant,
    start_len: usize,
    tokens: usize,
) -> u64 {
    let mut total = 0u64;
    let d = arch.head_dim;
    let p = arch.macs();
    let chunks_d = (d as u64).div_ceil(p as u64);
    for i in 0..tokens {
        let effective_l = if variant.flexible() { start_len + i + 1 } else { start_len + tokens };
        let qk = effective_l as u64 * chunks_d;
        let sv = if variant.flexible() {
            effective_l as u64 * chunks_d
        } else {
            let padded = (effective_l as u64).div_ceil(p as u64) * p as u64;
            ((padded * chunks_d) as f64 * arch.calibration.gather_slowdown).round() as u64
        };
        let drain = if variant.element_serial() {
            arch.calibration.element_serial_drain
        } else {
            arch.calibration.softmax_fill_cycles / 4 // pipelined across rows
        };
        total += qk + sv + drain;
    }
    if !variant.flexible() {
        total += tokens as u64 * arch.calibration.transpose_maintenance_per_head;
    }
    total
}

/// Cycles of a full chunked-prefill chunk (all heads); see
/// [`chunked_prefill_attention_cycles_per_head`].
pub fn chunked_prefill_attention_cycles(
    arch: &ArchConfig,
    variant: DataflowVariant,
    start_len: usize,
    tokens: usize,
) -> u64 {
    arch.n_heads as u64 * chunked_prefill_attention_cycles_per_head(arch, variant, start_len, tokens)
}

/// Average attention cycles per generated token over a generation phase:
/// prompt `p_len`, generating `gen_len` tokens, with the cache either
/// growing freely (`kv_budget = None`) or held at a budget by eviction
/// (`Some(s)` — the voting engine keeps `l = min(grown, s)`).
///
/// This is the quantity plotted in Fig. 8 (center, right): "latency of the
/// attention process averaged over tokens during the generation phase".
pub fn average_generation_attention_cycles(
    arch: &ArchConfig,
    variant: DataflowVariant,
    p_len: usize,
    gen_len: usize,
    kv_budget: Option<usize>,
) -> f64 {
    if gen_len == 0 {
        // Degenerate point: report the latency of the first generated token.
        let l = kv_budget.map_or(p_len + 1, |b| (p_len + 1).min(b.max(1)));
        return decode_attention_cycles(arch, variant, l) as f64;
    }
    let mut total = 0u64;
    for g in 0..gen_len {
        let grown = p_len + g + 1;
        let l = kv_budget.map_or(grown, |b| grown.min(b.max(1)));
        total += decode_attention_cycles(arch, variant, l);
    }
    total as f64 / gen_len as f64
}

/// Speedup of voting-based eviction holding the cache at `ratio × p_len`
/// versus the no-eviction baseline (both on VEDA, i.e. F+E) — one point of
/// Fig. 8 (right).
pub fn eviction_speedup(arch: &ArchConfig, p_len: usize, gen_len: usize, ratio: f64) -> f64 {
    let budget = ((p_len as f64 * ratio).round() as usize).max(1);
    let variant = DataflowVariant::FlexibleElementSerial;
    let baseline = average_generation_attention_cycles(arch, variant, p_len, gen_len, None);
    let evicted = average_generation_attention_cycles(arch, variant, p_len, gen_len, Some(budget));
    baseline / evicted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchConfig {
        ArchConfig::veda()
    }

    #[test]
    fn variant_ordering_holds_everywhere() {
        let a = arch();
        for l in [128usize, 257, 512, 1000, 1536, 4096] {
            let base = decode_attention_cycles(&a, DataflowVariant::Baseline, l);
            let f = decode_attention_cycles(&a, DataflowVariant::Flexible, l);
            let fe = decode_attention_cycles(&a, DataflowVariant::FlexibleElementSerial, l);
            assert!(base > f, "l={l}: baseline {base} <= flexible {f}");
            assert!(f > fe, "l={l}: flexible {f} <= element-serial {fe}");
        }
    }

    #[test]
    fn ablation_ratios_land_in_paper_band() {
        // Fig. 8 (center): Baseline+F ≈ 0.72–0.75, Baseline+F+E ≈
        // 0.55–0.63 over generation lengths 0..1024 after a 512 prompt.
        let a = arch();
        for gen in [0usize, 128, 256, 512, 1024] {
            let base = average_generation_attention_cycles(&a, DataflowVariant::Baseline, 512, gen, None);
            let f = average_generation_attention_cycles(&a, DataflowVariant::Flexible, 512, gen, None);
            let fe = average_generation_attention_cycles(
                &a,
                DataflowVariant::FlexibleElementSerial,
                512,
                gen,
                None,
            );
            let rf = f / base;
            let rfe = fe / base;
            assert!((0.62..=0.82).contains(&rf), "gen={gen}: F ratio {rf}");
            assert!((0.45..=0.70).contains(&rfe), "gen={gen}: F+E ratio {rfe}");
        }
    }

    #[test]
    fn element_serial_ratio_rises_with_generation_length() {
        // The paper's F+E curve rises from 0.55 toward 0.63 as generation
        // grows (the O(1) drain amortizes while O(l) terms grow).
        let a = arch();
        let ratio = |gen| {
            let base = average_generation_attention_cycles(&a, DataflowVariant::Baseline, 512, gen, None);
            let fe = average_generation_attention_cycles(
                &a,
                DataflowVariant::FlexibleElementSerial,
                512,
                gen,
                None,
            );
            fe / base
        };
        assert!(ratio(1024) > ratio(0), "F+E ratio must rise: {} vs {}", ratio(1024), ratio(0));
    }

    #[test]
    fn eviction_speedup_matches_paper_corners() {
        // Fig. 8 (right): 0.5 KV @ gen 128 ≈ 2.3×; 0.2 KV @ gen 1024 ≈ 10×.
        let a = arch();
        let s_lo = eviction_speedup(&a, 512, 128, 0.5);
        let s_hi = eviction_speedup(&a, 512, 1024, 0.2);
        assert!((1.8..=2.8).contains(&s_lo), "0.5KV@128 speedup {s_lo}");
        assert!((8.0..=12.0).contains(&s_hi), "0.2KV@1024 speedup {s_hi}");
    }

    #[test]
    fn eviction_speedup_monotone_in_ratio_and_length() {
        let a = arch();
        assert!(eviction_speedup(&a, 512, 512, 0.2) > eviction_speedup(&a, 512, 512, 0.4));
        assert!(eviction_speedup(&a, 512, 1024, 0.3) > eviction_speedup(&a, 512, 128, 0.3));
    }

    #[test]
    fn chunked_prefill_from_empty_cache_matches_whole_prompt_prefill() {
        let a = ArchConfig::veda();
        for variant in
            [DataflowVariant::Baseline, DataflowVariant::Flexible, DataflowVariant::FlexibleElementSerial]
        {
            for p_len in [1, 7, 64, 257] {
                assert_eq!(
                    chunked_prefill_attention_cycles_per_head(&a, variant, 0, p_len),
                    prefill_attention_cycles_per_head(&a, variant, p_len),
                    "{variant:?} p_len {p_len}"
                );
            }
        }
    }

    #[test]
    fn chunked_prefill_cost_grows_with_start_len_and_tokens() {
        let a = ArchConfig::veda();
        let v = DataflowVariant::FlexibleElementSerial;
        assert_eq!(chunked_prefill_attention_cycles_per_head(&a, v, 100, 0), 0);
        let early = chunked_prefill_attention_cycles_per_head(&a, v, 0, 16);
        let late = chunked_prefill_attention_cycles_per_head(&a, v, 512, 16);
        assert!(late > early, "rows deeper in the prompt attend to more keys");
        let small = chunked_prefill_attention_cycles_per_head(&a, v, 64, 8);
        let big = chunked_prefill_attention_cycles_per_head(&a, v, 64, 32);
        assert!(big > small);
        assert_eq!(chunked_prefill_attention_cycles(&a, v, 64, 8), a.n_heads as u64 * small, "heads sum");
    }

    #[test]
    fn prefill_causal_skip_halves_flexible_work() {
        // Section V: the flexible PE array skips the upper triangle,
        // halving effective attention ops at prefill.
        let a = arch();
        let flex = prefill_attention_cycles_per_head(&a, DataflowVariant::FlexibleElementSerial, 512);
        let base = prefill_attention_cycles_per_head(&a, DataflowVariant::Baseline, 512);
        // Flexible computes ~l²/2 + l²/2 = l²; baseline ~l² + 2l² (gather).
        assert!(base as f64 / flex as f64 > 1.8, "prefill ratio {}", base as f64 / flex as f64);
    }

    #[test]
    fn zero_length_cache_costs_nothing() {
        let a = arch();
        assert_eq!(decode_attention_cycles(&a, DataflowVariant::Baseline, 0), 0);
    }

    #[test]
    fn sequence_extension_is_smooth_for_flexible_only() {
        // l = 256 -> 257: flexible grows by one cycle per kernel; the
        // baseline jumps by a whole padded epoch in s'×V.
        let a = arch();
        let f_delta = decode_attention_cycles_per_head(&a, DataflowVariant::FlexibleElementSerial, 257)
            - decode_attention_cycles_per_head(&a, DataflowVariant::FlexibleElementSerial, 256);
        let b_delta = decode_attention_cycles_per_head(&a, DataflowVariant::Baseline, 257)
            - decode_attention_cycles_per_head(&a, DataflowVariant::Baseline, 256);
        assert_eq!(f_delta, 2);
        assert!(b_delta > 200, "baseline epoch jump {b_delta}");
    }
}

//! The Special Function Unit: element-serial reduction and normalization
//! (Fig. 6).
//!
//! Both softmax and layernorm decompose into a *reduction* stage (condense
//! the stream into a few scalars) and a *normalization* stage
//! (element-wise fixups). The reduction unit consumes the inner-product
//! array's serial output — one element per cycle — maintaining the online
//! maximum / exponent-sum (softmax) or `Σx` / `Σx²` (layernorm) while the
//! tile sits in a small FIFO. The normalization unit produces the
//! element-serial *input* stream of the outer-product array. With a PE
//! array consuming/producing one element per cycle, a single SFU removes
//! the nonlinear-operator latency — the O(N) → O(1) claim.

use crate::arch::SfuConfig;
use veda_mem::Fifo;
use veda_tensor::norm::StreamingMoments;
use veda_tensor::OnlineSoftmax;

/// Element-serial softmax engine: push scores as they leave the
/// inner-product array, then drain normalized probabilities into the
/// outer-product array.
///
/// ```
/// use veda_accel::sfu::SoftmaxUnit;
/// let mut sm = SoftmaxUnit::new(veda_accel::arch::SfuConfig::default());
/// for &x in &[1.0_f32, 3.0, 2.0] { sm.push(x); }
/// let probs = sm.finish();
/// assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct SoftmaxUnit {
    config: SfuConfig,
    reduction: OnlineSoftmax,
    /// Staged elements awaiting normalization. Hardware stages one tile in
    /// the 32-word FIFO while the vote engine's big FIFO holds the rest;
    /// the model stages the full vector and tracks the high-water mark of
    /// the tile FIFO separately.
    staged: Vec<f32>,
    tile_fifo: Fifo<f32>,
}

impl SoftmaxUnit {
    /// Creates a softmax unit with the given SFU resources.
    pub fn new(config: SfuConfig) -> Self {
        let depth = config.fifo_depth.max(1);
        Self { config, reduction: OnlineSoftmax::new(), staged: Vec::new(), tile_fifo: Fifo::new(depth) }
    }

    /// Feeds one element from the serial array output (reduction stage).
    pub fn push(&mut self, x: f32) {
        self.reduction.push(x);
        if self.tile_fifo.is_full() {
            self.tile_fifo.pop();
        }
        let _ = self.tile_fifo.push(x);
        self.staged.push(x);
    }

    /// Number of elements pushed so far.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Running maximum (reduction state).
    pub fn running_max(&self) -> f32 {
        self.reduction.max()
    }

    /// Running exponent sum (reduction state).
    pub fn running_exp_sum(&self) -> f32 {
        self.reduction.exp_sum()
    }

    /// Completes the reduction and drains normalized probabilities
    /// (the element-serial normalization stage), resetting the unit.
    pub fn finish(&mut self) -> Vec<f32> {
        let out = self.reduction.normalize_all(&self.staged);
        self.reduction = OnlineSoftmax::new();
        self.staged.clear();
        self.tile_fifo.clear();
        out
    }

    /// Cycles the *blocking* (non-element-serial) schedule would spend on a
    /// softmax of `len` elements: one reduction pass plus one normalization
    /// pass, each limited by the EXP/DIV unit counts.
    pub fn blocking_cycles(&self, len: usize) -> u64 {
        let reduce = (len as u64).div_ceil(self.config.exp_units.max(1) as u64);
        let normalize = (len as u64).div_ceil(self.config.div_units.max(1) as u64);
        reduce + normalize
    }

    /// The O(1) cycles the element-serial schedule exposes: draining the
    /// tile FIFO plus the final exponent-sum update.
    pub fn element_serial_drain_cycles(&self) -> u64 {
        self.config.fifo_depth as u64 + 8
    }
}

/// Element-serial layernorm engine: streams `Σx`/`Σx²` during the producing
/// GEMV, then normalizes element-serially into the consuming GEMV.
#[derive(Debug, Clone)]
pub struct LayernormUnit {
    moments: StreamingMoments,
    staged: Vec<f32>,
    eps: f32,
}

impl LayernormUnit {
    /// Creates a layernorm unit.
    pub fn new(eps: f32) -> Self {
        Self { moments: StreamingMoments::new(), staged: Vec::new(), eps }
    }

    /// Feeds one element (reduction stage: sum and sum of squares update
    /// simultaneously, per Section IV-B).
    pub fn push(&mut self, x: f32) {
        self.moments.push(x);
        self.staged.push(x);
    }

    /// Completes the reduction and drains normalized values, resetting.
    pub fn finish(&mut self) -> Vec<f32> {
        let mean = self.moments.mean();
        let inv = 1.0 / (self.moments.variance() + self.eps).sqrt();
        let out = self.staged.iter().map(|&x| (x - mean) * inv).collect();
        self.moments = StreamingMoments::new();
        self.staged.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_unit_matches_reference() {
        let mut sm = SoftmaxUnit::new(SfuConfig::default());
        let xs = [0.4f32, -1.0, 2.5, 2.5, 0.0];
        for &x in &xs {
            sm.push(x);
        }
        let got = sm.finish();
        let want = veda_tensor::softmax::softmax(&xs);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_unit_resets_after_finish() {
        let mut sm = SoftmaxUnit::new(SfuConfig::default());
        sm.push(1.0);
        sm.finish();
        assert!(sm.is_empty());
        sm.push(5.0);
        let p = sm.finish();
        assert_eq!(p, vec![1.0]);
    }

    #[test]
    fn online_reduction_state_is_exposed() {
        let mut sm = SoftmaxUnit::new(SfuConfig::default());
        sm.push(1.0);
        sm.push(3.0);
        assert_eq!(sm.running_max(), 3.0);
        assert!(sm.running_exp_sum() > 1.0);
    }

    #[test]
    fn blocking_cycles_scale_with_length() {
        let sm = SoftmaxUnit::new(SfuConfig::default());
        // 2 EXP + 2 DIV: 1000 elements => 500 + 500 cycles.
        assert_eq!(sm.blocking_cycles(1000), 1000);
        assert_eq!(sm.blocking_cycles(0), 0);
    }

    #[test]
    fn element_serial_drain_is_constant() {
        let sm = SoftmaxUnit::new(SfuConfig::default());
        let d = sm.element_serial_drain_cycles();
        assert_eq!(d, 40);
        // O(1): independent of any length.
        assert_eq!(sm.element_serial_drain_cycles(), d);
    }

    #[test]
    fn layernorm_unit_matches_reference() {
        let mut ln = LayernormUnit::new(1e-5);
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        for &x in &xs {
            ln.push(x);
        }
        let got = ln.finish();
        let want = veda_tensor::norm::layernorm(&xs, &[], &[], 1e-5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4);
        }
    }

    #[test]
    fn tile_fifo_never_overflows() {
        let mut sm = SoftmaxUnit::new(SfuConfig::default());
        for i in 0..10_000 {
            sm.push(i as f32 * 1e-3);
        }
        // Push beyond the FIFO depth must not panic; reduction still exact.
        let probs = sm.finish();
        assert_eq!(probs.len(), 10_000);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2);
    }
}

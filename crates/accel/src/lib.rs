//! # veda-accel
//!
//! Cycle-accurate model of the VEDA accelerator (Sections IV–V of the
//! paper) and of the conventional adder-tree baseline used in the ablation.
//!
//! Two layers of modelling live here:
//!
//! * **Functional** — [`pe`]/[`array`](mod@array) implement the runtime-reconfigurable
//!   PE array bit-for-bit: 2-bit mode control, type-A/B PEs, the two-level
//!   (L1/L2) adder tree, inner-product and outer-product configurations.
//!   [`sfu`] implements the element-serial reduction/normalization units
//!   (online softmax, streaming mean/variance), and [`voting`] the hardware
//!   voting engine with its FIFO, 16-bit vote buffer and 12-bit eviction
//!   index. These produce *values* identical (up to FP16 rounding) to the
//!   reference kernels in `veda-tensor` — tested property-style.
//! * **Timing** — [`attention`] and [`schedule`] charge cycles for the
//!   attention process and whole decode/prefill steps under three
//!   architecture variants ([`arch::DataflowVariant`]): the fixed
//!   adder-tree baseline, baseline + flexible product (F), and baseline +
//!   flexible + element-serial scheduling (F+E = VEDA). The paper
//!   cross-validates its own performance model against RTL; this crate is
//!   the analogous model, with every calibration constant documented in
//!   [`arch::BaselineCalibration`].
//!
//! The serving engine's batched tick is costed here too:
//! [`DecodeScheduler::mixed_batch`] charges one tick in which every
//! decode sequence advances a token and every prefilling sequence
//! consumes a [`PrefillChunk`] — linear-layer weights stream from HBM
//! once for the whole tick (the amortization that makes batching pay),
//! while attention is charged per sequence at its own cache length. A
//! chunk's `start_len` is whatever KV is already resident, so a sequence
//! seeded from a shared-prefix cache entry is charged prefill for its
//! unshared suffix only while its attention still covers the full
//! resident span. Everything is a pure function of its inputs — no
//! wall-clock, no randomness — so cycle reports are reproducible by
//! construction.
//!
//! ## Example
//!
//! ```
//! use veda_accel::arch::{ArchConfig, DataflowVariant};
//! use veda_accel::attention::decode_attention_cycles;
//!
//! let arch = ArchConfig::veda();
//! let l = 1024; // cache length
//! let base = decode_attention_cycles(&arch, DataflowVariant::Baseline, l);
//! let veda = decode_attention_cycles(&arch, DataflowVariant::FlexibleElementSerial, l);
//! assert!(veda < base);
//! ```

// Every public item in the accelerator model is documented; rustdoc
// enforces it so the API surface cannot silently rot.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arch;
pub mod array;
pub mod attention;
pub mod pe;
pub mod pipeline;
pub mod report;
pub mod schedule;
pub mod sfu;
pub mod voting;

pub use arch::{ArchConfig, DataflowVariant, ParseDataflowVariantError};
pub use array::{ArrayMode, PeArray};
pub use attention::decode_attention_cycles;
pub use pipeline::AttentionPipeline;
pub use report::CycleReport;
pub use schedule::{DecodeScheduler, LlamaShape, PrefillChunk};
pub use voting::VotingEngine;

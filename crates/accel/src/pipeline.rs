//! Functional attention pipeline on the hardware models — the
//! "RTL-simulation" path of the reproduction.
//!
//! [`AttentionPipeline`] executes one decode-step attention *entirely on
//! the functional hardware models*: `q × Kᵀ` on the inner-product PE
//! array, the softmax reduction/normalization on the element-serial SFU,
//! `s' × V` on the outer-product PE array, with the voting engine snooping
//! `s'` — exactly the dataflow of Fig. 6 (c) and Fig. 7. Results are
//! FP16-faithful and differentially tested against the `veda-tensor`
//! reference kernels, which is how this workspace "cross-validates the
//! performance model with RTL simulations" (Section VI) without RTL.

use crate::arch::SfuConfig;
use crate::array::{ArrayMode, PeArray};
use crate::sfu::SoftmaxUnit;
use crate::voting::VotingEngine;
use veda_eviction::VotingConfig;
use veda_tensor::Matrix;

/// Result of one attention step executed on the functional hardware.
#[derive(Debug, Clone)]
pub struct PipelineStep {
    /// Post-softmax attention scores (FP16-faithful).
    pub scores: Vec<f32>,
    /// Attention output `s' × V` (FP16-faithful).
    pub output: Vec<f32>,
    /// PE-array cycles charged (inner + outer phases).
    pub pe_cycles: u64,
    /// Voting-engine busy cycles (overlapped with the outer phase).
    pub vote_cycles: u64,
}

/// One head's attention datapath built from the functional hardware
/// models.
///
/// ```
/// use veda_accel::pipeline::AttentionPipeline;
/// use veda_tensor::Matrix;
///
/// let mut pipe = AttentionPipeline::veda();
/// let keys = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// let values = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// pipe.engine_mut().on_append().unwrap();
/// pipe.engine_mut().on_append().unwrap();
/// let step = pipe.attention_step(&[1.0, 0.0], &keys, &values, 0.5);
/// assert_eq!(step.scores.len(), 2);
/// assert_eq!(step.output.len(), 2);
/// ```
#[derive(Debug)]
pub struct AttentionPipeline {
    array: PeArray,
    softmax: SoftmaxUnit,
    engine: VotingEngine,
}

impl AttentionPipeline {
    /// Builds a pipeline from explicit components.
    pub fn new(array: PeArray, sfu: SfuConfig, engine: VotingEngine) -> Self {
        Self { array, softmax: SoftmaxUnit::new(sfu), engine }
    }

    /// The paper's configuration: 8×8 tile, Table I SFU, 4096-entry voting
    /// engine with default algorithm parameters.
    pub fn veda() -> Self {
        Self::new(PeArray::veda_tile(), SfuConfig::default(), VotingEngine::veda())
    }

    /// The voting engine (to register appends / ask for evictions).
    pub fn engine_mut(&mut self) -> &mut VotingEngine {
        &mut self.engine
    }

    /// Borrow of the voting engine.
    pub fn engine(&self) -> &VotingEngine {
        &self.engine
    }

    /// Builds with a custom voting configuration (capacity 4096).
    pub fn with_voting(config: VotingConfig) -> Self {
        Self::new(PeArray::veda_tile(), SfuConfig::default(), VotingEngine::new(4096, config))
    }

    /// Executes one attention step for one head:
    ///
    /// 1. inner-product phase — `s = (q × Kᵀ) · scale`, element-serial
    ///    output feeding the SFU reduction;
    /// 2. softmax normalization — element-serial drain;
    /// 3. voting-engine snoop of `s'`;
    /// 4. outer-product phase — `o = s' × V`.
    ///
    /// # Panics
    ///
    /// Panics if `keys`/`values` disagree in shape with `q`.
    pub fn attention_step(&mut self, q: &[f32], keys: &Matrix, values: &Matrix, scale: f32) -> PipelineStep {
        assert_eq!(keys.rows(), values.rows(), "K/V row mismatch");
        assert_eq!(keys.cols(), q.len(), "query width mismatch");

        // Phase 1: q × Kᵀ on the inner-product configuration; the serial
        // outputs stream into the SFU reduction as they are produced.
        self.array.configure(ArrayMode::InnerProduct);
        let inner = self.array.inner_gemv(q, keys);
        for &s in &inner.values {
            self.softmax.push(s * scale);
        }

        // Phase 2: element-serial normalization.
        let scores = self.softmax.finish();

        // Phase 3: the voting engine snoops s' in parallel with phase 4.
        let vote_cycles = self.engine.process_head(&scores);

        // Phase 4: s' × V on the outer-product configuration.
        self.array.configure(ArrayMode::OuterProduct);
        let outer = self.array.outer_gemv(&scores, values);

        PipelineStep { scores, output: outer.values, pe_cycles: inner.cycles + outer.cycles, vote_cycles }
    }

    /// Reference (software) result of the same step, for differential
    /// testing: full-precision kernels from `veda-tensor`.
    pub fn reference_step(q: &[f32], keys: &Matrix, values: &Matrix, scale: f32) -> (Vec<f32>, Vec<f32>) {
        let mut s = veda_tensor::ops::gemv_inner(q, keys);
        for v in &mut s {
            *v *= scale;
        }
        let scores = veda_tensor::softmax::softmax(&s);
        let output = veda_tensor::ops::gemv_outer(&scores, values);
        (scores, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_tensor::ops::max_abs_diff;

    fn random_kv(l: usize, d: usize, seed: u64) -> (Vec<f32>, Matrix, Matrix) {
        let mut rng = veda_tensor::rng::seeded(seed);
        let q = veda_tensor::rng::normal_vec(&mut rng, d, 0.5);
        let k = Matrix::from_vec(l, d, veda_tensor::rng::normal_vec(&mut rng, l * d, 0.5)).unwrap();
        let v = Matrix::from_vec(l, d, veda_tensor::rng::normal_vec(&mut rng, l * d, 0.5)).unwrap();
        (q, k, v)
    }

    #[test]
    fn hardware_matches_reference_within_fp16() {
        for &(l, d) in &[(8usize, 16usize), (33, 64), (100, 32)] {
            let (q, k, v) = random_kv(l, d, l as u64);
            let mut pipe = AttentionPipeline::veda();
            for _ in 0..l {
                pipe.engine_mut().on_append().unwrap();
            }
            let hw = pipe.attention_step(&q, &k, &v, 1.0 / (d as f32).sqrt());
            let (ref_scores, ref_out) =
                AttentionPipeline::reference_step(&q, &k, &v, 1.0 / (d as f32).sqrt());
            assert!(max_abs_diff(&hw.scores, &ref_scores) < 0.01, "scores diverge at l={l} d={d}");
            assert!(max_abs_diff(&hw.output, &ref_out) < 0.05, "outputs diverge at l={l} d={d}");
        }
    }

    #[test]
    fn scores_are_distributions() {
        let (q, k, v) = random_kv(40, 32, 7);
        let mut pipe = AttentionPipeline::veda();
        for _ in 0..40 {
            pipe.engine_mut().on_append().unwrap();
        }
        let step = pipe.attention_step(&q, &k, &v, 0.2);
        let sum: f32 = step.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-2, "sum {sum}");
    }

    #[test]
    fn pe_cycles_follow_flexible_mapping() {
        // l temporal in both phases; d = 64 fits the 8×8 tile.
        let (q, k, v) = random_kv(50, 64, 3);
        let mut pipe = AttentionPipeline::veda();
        for _ in 0..50 {
            pipe.engine_mut().on_append().unwrap();
        }
        let step = pipe.attention_step(&q, &k, &v, 1.0);
        assert_eq!(step.pe_cycles, 50 + 50);
        // Voting engine busy cycles 2l + 8 (hidden behind the 2l compute).
        assert_eq!(step.vote_cycles, 2 * 50 + 8);
    }

    #[test]
    fn voting_engine_accumulates_across_steps_and_evicts() {
        let d = 16;
        let mut pipe = AttentionPipeline::with_voting(VotingConfig::with_reserved_len(2));
        let mut keys = Matrix::default();
        let mut values = Matrix::default();
        let mut rng = veda_tensor::rng::seeded(11);
        for step in 0..20 {
            keys.push_row(&veda_tensor::rng::normal_vec(&mut rng, d, 0.5)).unwrap();
            values.push_row(&veda_tensor::rng::normal_vec(&mut rng, d, 0.5)).unwrap();
            pipe.engine_mut().on_append().unwrap();
            let q = veda_tensor::rng::normal_vec(&mut rng, d, 0.5);
            pipe.attention_step(&q, &keys, &values, 0.25);
            if keys.rows() > 8 {
                let len = keys.rows();
                let victim = pipe.engine_mut().evict(len).expect("evictable");
                assert!(victim >= 2, "reserved prefix evicted at step {step}");
                keys.remove_row(victim);
                values.remove_row(victim);
            }
        }
        assert_eq!(keys.rows(), 8, "cache held at the post-eviction budget");
    }
}

//! Hardware model of the voting engine (Fig. 7, right).
//!
//! The engine snoops the softmax result `s'` on its way into the `s'×V`
//! outer product: each head's score vector is pushed through a FIFO while a
//! reduction unit computes its mean and standard deviation; elements are
//! then popped and compared against the threshold, incrementing the
//! layer-wise 16-bit vote-count buffer. During generation the engine also
//! tracks the maximum vote and its index (a 12-bit register, sufficient for
//! the 4096-entry capacity). It operates fully in parallel with the PE
//! array, so it contributes no critical-path cycles — the model verifies
//! that claim by tracking its own busy cycles and comparing against the
//! overlapped compute.
//!
//! Scores are FP16-quantized on ingest (the FIFO is 16-bit) and the
//! algorithm is *exactly* [`veda_eviction::VotingPolicy`]; a differential
//! test keeps hardware and reference in lockstep.

use veda_eviction::{EvictionPolicy, VotingConfig, VotingPolicy};
use veda_mem::Fifo;

/// Error raised when the engine's hardware capacity is exceeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteCapacityError {
    /// Cache length that was requested.
    pub requested: usize,
    /// Hardware capacity (buffer entries).
    pub capacity: usize,
}

impl std::fmt::Display for VoteCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vote buffer capacity {} exceeded by cache length {}", self.capacity, self.requested)
    }
}

impl std::error::Error for VoteCapacityError {}

/// The hardware voting engine.
#[derive(Debug)]
pub struct VotingEngine {
    policy: VotingPolicy,
    capacity: usize,
    score_fifo: Fifo<u16>,
    busy_cycles: u64,
    heads_processed: u64,
}

impl VotingEngine {
    /// Creates an engine with `capacity` vote-buffer entries (4096 in
    /// Table I) and the given algorithm configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or exceeds the 12-bit index range.
    pub fn new(capacity: usize, config: VotingConfig) -> Self {
        assert!(capacity > 0, "vote capacity must be positive");
        assert!(capacity <= 1 << 12, "eviction index register is 12 bits (max 4096 entries)");
        Self {
            policy: VotingPolicy::new(config),
            capacity,
            score_fifo: Fifo::new(capacity),
            busy_cycles: 0,
            heads_processed: 0,
        }
    }

    /// The engine with the paper's capacity and defaults.
    pub fn veda() -> Self {
        Self::new(4096, VotingConfig::default())
    }

    /// Registers a newly appended kv position.
    ///
    /// # Errors
    ///
    /// Returns [`VoteCapacityError`] when the buffer is full.
    pub fn on_append(&mut self) -> Result<(), VoteCapacityError> {
        if self.policy.tracked_len() >= self.capacity {
            return Err(VoteCapacityError {
                requested: self.policy.tracked_len() + 1,
                capacity: self.capacity,
            });
        }
        self.policy.on_append();
        Ok(())
    }

    /// Processes one head's score vector: FIFO ingest, threshold reduction,
    /// vote update. Returns the engine-busy cycles (hidden behind the
    /// `s'×V` outer product, which takes one cycle per element too).
    pub fn process_head(&mut self, scores: &[f32]) -> u64 {
        // FP16 ingest through the 16-bit FIFO.
        let quantized: Vec<f32> = scores
            .iter()
            .map(|&s| {
                let h = veda_tensor::F16::from_f32(s);
                if self.score_fifo.is_full() {
                    self.score_fifo.pop();
                }
                let _ = self.score_fifo.push(h.to_bits());
                h.to_f32()
            })
            .collect();
        self.policy.observe(veda_eviction::ScoreView::single(&quantized));
        self.heads_processed += 1;
        // One cycle per element for ingest+reduce, one for vote update,
        // plus a small constant for the threshold computation.
        let busy = 2 * scores.len() as u64 + 8;
        self.busy_cycles += busy;
        busy
    }

    /// Selects the eviction victim (max vote count, earliest on ties,
    /// reserved prefix protected), compacting the vote buffer.
    pub fn evict(&mut self, cache_len: usize) -> Option<usize> {
        let victim = self.policy.select_victim(cache_len)?;
        debug_assert!(victim < 1 << 12, "eviction index must fit UINT12");
        self.policy.on_evict(victim);
        Some(victim)
    }

    /// The mirrored algorithm state (for differential testing).
    pub fn policy(&self) -> &VotingPolicy {
        &self.policy
    }

    /// Total engine-busy cycles so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Heads processed so far.
    pub fn heads_processed(&self) -> u64 {
        self.heads_processed
    }

    /// True when the engine's work for a step is hidden behind the
    /// attention compute of the same step: the engine needs `2l + 8` cycles
    /// per head while `q×Kᵀ` plus `s'×V` provide `2l` PE cycles per head —
    /// so overlap holds whenever `l ≥ 8`.
    pub fn hidden_behind_compute(&self, cache_len: usize) -> bool {
        cache_len >= 8
    }

    /// Resets all state.
    pub fn reset(&mut self) {
        self.policy.reset();
        self.score_fifo.clear();
        self.busy_cycles = 0;
        self.heads_processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_tensor::fp16::quantize_f32;

    fn scores(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = veda_tensor::rng::seeded(seed);
        let raw = veda_tensor::rng::uniform_vec(&mut rng, n, 0.01, 1.0);
        let sum: f32 = raw.iter().sum();
        raw.into_iter().map(|x| x / sum).collect()
    }

    #[test]
    fn engine_matches_software_policy_on_fp16_scores() {
        // Differential test: the engine must agree with a software policy
        // fed the same FP16-quantized scores.
        let mut hw = VotingEngine::new(64, VotingConfig::with_reserved_len(2));
        let mut sw = VotingPolicy::new(VotingConfig::with_reserved_len(2));
        for step in 0..40 {
            hw.on_append().unwrap();
            sw.on_append();
            let len = hw.policy().tracked_len();
            let s = scores(len, step);
            let q: Vec<f32> = s.iter().map(|&x| quantize_f32(x)).collect();
            hw.process_head(&s);
            sw.observe(veda_eviction::ScoreView::single(&q));
            assert_eq!(hw.policy().vote_counts(), sw.vote_counts(), "desync at step {step}");
        }
        let len = hw.policy().tracked_len();
        assert_eq!(hw.evict(len), sw.select_victim(len));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut e = VotingEngine::new(4, VotingConfig::default());
        for _ in 0..4 {
            e.on_append().unwrap();
        }
        assert!(e.on_append().is_err());
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn capacity_beyond_uint12_rejected() {
        VotingEngine::new(5000, VotingConfig::default());
    }

    #[test]
    fn veda_engine_capacity_is_4096() {
        let e = VotingEngine::veda();
        assert_eq!(e.capacity, 4096);
    }

    #[test]
    fn busy_cycles_hidden_behind_compute() {
        let mut e = VotingEngine::veda();
        for _ in 0..512 {
            e.on_append().unwrap();
        }
        let busy = e.process_head(&scores(512, 1));
        // 2l + 8 engine cycles vs 2l compute cycles per head: hidden for
        // realistic lengths.
        assert_eq!(busy, 2 * 512 + 8);
        assert!(e.hidden_behind_compute(512));
        assert!(!e.hidden_behind_compute(4));
    }

    #[test]
    fn reset_clears_counters() {
        let mut e = VotingEngine::veda();
        e.on_append().unwrap();
        e.process_head(&scores(1, 2));
        e.reset();
        assert_eq!(e.busy_cycles(), 0);
        assert_eq!(e.heads_processed(), 0);
        assert_eq!(e.policy().tracked_len(), 0);
    }
}

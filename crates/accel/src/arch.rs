//! Architecture configuration and the calibrated baseline model constants.

/// Which dataflow/scheduling features are enabled — the three bars of the
/// Fig. 8 (center) ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataflowVariant {
    /// Conventional fixed adder-tree architecture (A3-like): inner-product
    /// only, blocking softmax stage, transpose handling for V.
    Baseline,
    /// Baseline + flexible-product dataflow (F): inner product for `q×Kᵀ`,
    /// outer product for `s'×V`, no transpose, no chunk padding, causal
    /// skip in prefill.
    Flexible,
    /// Flexible + element-serial scheduling (F+E): softmax/layernorm
    /// overlapped with the PE array, SFU cost O(1). This is VEDA.
    FlexibleElementSerial,
}

impl DataflowVariant {
    /// All variants in ablation order.
    pub const ALL: [DataflowVariant; 3] =
        [DataflowVariant::Baseline, DataflowVariant::Flexible, DataflowVariant::FlexibleElementSerial];

    /// Label used in reports ("Baseline", "Baseline+F", "Baseline+F+E").
    pub fn label(self) -> &'static str {
        match self {
            DataflowVariant::Baseline => "Baseline",
            DataflowVariant::Flexible => "Baseline+F",
            DataflowVariant::FlexibleElementSerial => "Baseline+F+E",
        }
    }

    /// Whether the flexible-product dataflow is enabled.
    pub fn flexible(self) -> bool {
        !matches!(self, DataflowVariant::Baseline)
    }

    /// Whether element-serial scheduling is enabled.
    pub fn element_serial(self) -> bool {
        matches!(self, DataflowVariant::FlexibleElementSerial)
    }
}

impl std::fmt::Display for DataflowVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`DataflowVariant`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataflowVariantError(String);

impl std::fmt::Display for ParseDataflowVariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown dataflow variant {:?} (expected one of: baseline, flexible/baseline+f, \
             flexible-element-serial/baseline+f+e/veda)",
            self.0
        )
    }
}

impl std::error::Error for ParseDataflowVariantError {}

impl std::str::FromStr for DataflowVariant {
    type Err = ParseDataflowVariantError;

    /// Parses a variant from a CLI-friendly name. Accepts the report labels
    /// ("Baseline+F+E"), kebab/snake names, the short forms "f" / "fe", and
    /// "veda"; matching is case-insensitive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized: String =
            s.trim().to_ascii_lowercase().chars().filter(|c| !matches!(c, '-' | '_' | ' ')).collect();
        match normalized.as_str() {
            "baseline" | "base" => Ok(DataflowVariant::Baseline),
            "flexible" | "baseline+f" | "f" => Ok(DataflowVariant::Flexible),
            "flexibleelementserial" | "baseline+f+e" | "fe" | "f+e" | "elementserial" | "veda" => {
                Ok(DataflowVariant::FlexibleElementSerial)
            }
            _ => Err(ParseDataflowVariantError(s.to_string())),
        }
    }
}

/// Special Function Unit resource counts (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfuConfig {
    /// Exponentiation units.
    pub exp_units: usize,
    /// Divider units.
    pub div_units: usize,
    /// Square-root units.
    pub sqrt_units: usize,
    /// Multipliers.
    pub mul_units: usize,
    /// Adders.
    pub add_units: usize,
    /// Tile FIFO depth (words).
    pub fifo_depth: usize,
}

impl Default for SfuConfig {
    fn default() -> Self {
        // Table I: 2 EXP, 2 dividers, 1 sqrt, 2 multipliers, 4 adders,
        // 32×16-bit FIFO.
        Self { exp_units: 2, div_units: 2, sqrt_units: 1, mul_units: 2, add_units: 4, fifo_depth: 32 }
    }
}

/// Calibration constants of the baseline/ablation timing model.
///
/// The paper's baseline internals are not fully specified; these constants
/// encode the documented assumptions, chosen so the model lands in the
/// reported latency band (Baseline+F ≈ 0.72–0.75×, Baseline+F+E ≈
/// 0.55–0.63×). Each constant has a physical justification:
///
/// * `gather_slowdown` — the fixed inner-product engine reads V column-wise
///   (or maintains a transposed copy through a compromised path); modelled
///   as the `s'×V` kernel running at half the MAC throughput.
/// * `transpose_maintenance_per_head` — cycles per token per head to keep
///   the transposed V layout up to date (d elements through an 8-wide
///   serializer).
/// * `softmax_fill_cycles` — pipeline fill/drain latency of the blocking
///   softmax stage (deep EXP/DIV pipes + staging FIFO).
/// * `softmax_residual_throughput` — effective elements/cycle of softmax
///   work that is *not* hidden by cross-head overlap in the baseline
///   (most per-element work pipelines under the next head's GEMV; the
///   residual exposes `l / throughput` cycles).
/// * `element_serial_drain` — the O(1) cost VEDA still pays per softmax:
///   FIFO drain plus the final exp-sum update (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineCalibration {
    /// Throughput divisor on `s'×V` in the baseline (V-gather path).
    pub gather_slowdown: f64,
    /// Per-token per-head cycles to maintain the transposed V copy.
    pub transpose_maintenance_per_head: u64,
    /// Blocking-softmax pipeline fill latency in cycles.
    pub softmax_fill_cycles: u64,
    /// Effective elements/cycle of non-overlapped softmax residual work.
    pub softmax_residual_throughput: u64,
    /// O(1) drain cycles of the element-serial schedule.
    pub element_serial_drain: u64,
}

impl Default for BaselineCalibration {
    fn default() -> Self {
        Self {
            gather_slowdown: 2.0,
            transpose_maintenance_per_head: 16,
            softmax_fill_cycles: 300,
            softmax_residual_throughput: 20,
            element_serial_drain: 40,
        }
    }
}

/// Full accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// PE array rows (8 in VEDA).
    pub pe_rows: usize,
    /// PE array columns (8 in VEDA).
    pub pe_cols: usize,
    /// Parallel lanes / array copies (the ×2 of "8×8×2").
    pub pe_lanes: usize,
    /// Clock frequency in GHz (1.0 in the paper).
    pub clock_ghz: f64,
    /// Attention head dimension the timing model assumes (128 for Llama-2).
    pub head_dim: usize,
    /// Number of attention heads (32 for Llama-2 7B).
    pub n_heads: usize,
    /// SFU resources.
    pub sfu: SfuConfig,
    /// Voting-engine capacity in positions (4096×16-bit buffers, Table I).
    pub vote_capacity: usize,
    /// On-chip buffer size in bytes (256 KB).
    pub sram_bytes: usize,
    /// Calibrated baseline-model constants.
    pub calibration: BaselineCalibration,
}

impl ArchConfig {
    /// The paper's VEDA configuration: 8×8×2 PEs at 1 GHz, 256 KB SRAM,
    /// 4096-entry voting engine, Llama-2-7B attention geometry.
    pub fn veda() -> Self {
        Self {
            pe_rows: 8,
            pe_cols: 8,
            pe_lanes: 2,
            clock_ghz: 1.0,
            head_dim: 128,
            n_heads: 32,
            sfu: SfuConfig::default(),
            vote_capacity: 4096,
            sram_bytes: 256 * 1024,
            calibration: BaselineCalibration::default(),
        }
    }

    /// Total MAC units (peak per-cycle multiply-accumulates): 8·8·2 = 128.
    pub fn macs(&self) -> usize {
        self.pe_rows * self.pe_cols * self.pe_lanes
    }

    /// Peak throughput in GOPS (MAC = 2 ops).
    pub fn peak_gops(&self) -> f64 {
        self.macs() as f64 * 2.0 * self.clock_ghz
    }

    /// Cycles for a flexible GEMV of shape `(1,k) × (k,n)`:
    /// the flexible dimension maps to time, the other spatially to the
    /// array, chunked by [`ArchConfig::macs`].
    ///
    /// * inner product: `n` outputs, each `ceil(k / macs)` cycles;
    /// * outer product: `k` inputs, each `ceil(n / macs)` cycles.
    ///
    /// Both reduce to `time_dim × ceil(spatial_dim / macs)`.
    pub fn flexible_gemv_cycles(&self, time_dim: usize, spatial_dim: usize) -> u64 {
        (time_dim as u64) * (spatial_dim as u64).div_ceil(self.macs() as u64)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.macs() == 0 {
            return Err("PE array must have at least one MAC".into());
        }
        if self.clock_ghz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.head_dim == 0 || self.n_heads == 0 {
            return Err("attention geometry must be positive".into());
        }
        if self.vote_capacity == 0 {
            return Err("vote capacity must be positive".into());
        }
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::veda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn veda_has_128_macs_and_256_gops() {
        let a = ArchConfig::veda();
        assert_eq!(a.macs(), 128);
        assert!((a.peak_gops() - 256.0).abs() < 1e-9);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn flexible_gemv_cycles_map_time_to_cycles() {
        let a = ArchConfig::veda();
        // q×Kᵀ at l=1000, d=128: 1000 cycles.
        assert_eq!(a.flexible_gemv_cycles(1000, 128), 1000);
        // d=129 needs two chunks per step.
        assert_eq!(a.flexible_gemv_cycles(1000, 129), 2000);
        // FFN: k=4096 spatial => 32 chunks per output.
        assert_eq!(a.flexible_gemv_cycles(1, 4096), 32);
    }

    #[test]
    fn variant_labels_match_figure() {
        assert_eq!(DataflowVariant::Baseline.label(), "Baseline");
        assert_eq!(DataflowVariant::Flexible.label(), "Baseline+F");
        assert_eq!(DataflowVariant::FlexibleElementSerial.label(), "Baseline+F+E");
        assert!(DataflowVariant::FlexibleElementSerial.flexible());
        assert!(!DataflowVariant::Baseline.flexible());
        assert!(!DataflowVariant::Flexible.element_serial());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut a = ArchConfig::veda();
        a.pe_rows = 0;
        assert!(a.validate().is_err());
        let mut b = ArchConfig::veda();
        b.clock_ghz = 0.0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn variant_parses_from_cli_names_and_round_trips() {
        for v in DataflowVariant::ALL {
            assert_eq!(v.label().parse::<DataflowVariant>().unwrap(), v, "{v} label round trip");
        }
        assert_eq!("veda".parse::<DataflowVariant>().unwrap(), DataflowVariant::FlexibleElementSerial);
        assert_eq!(
            "flexible-element-serial".parse::<DataflowVariant>().unwrap(),
            DataflowVariant::FlexibleElementSerial
        );
        assert_eq!("F".parse::<DataflowVariant>().unwrap(), DataflowVariant::Flexible);
        assert_eq!("Baseline".parse::<DataflowVariant>().unwrap(), DataflowVariant::Baseline);
        assert!("warp".parse::<DataflowVariant>().is_err());
        let msg = "warp".parse::<DataflowVariant>().unwrap_err().to_string();
        assert!(msg.contains("warp"), "{msg}");
    }

    #[test]
    fn sfu_defaults_match_table1() {
        let s = SfuConfig::default();
        assert_eq!((s.exp_units, s.div_units, s.sqrt_units), (2, 2, 1));
        assert_eq!((s.mul_units, s.add_units, s.fifo_depth), (2, 4, 32));
    }
}

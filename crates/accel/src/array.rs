//! The runtime-reconfigurable PE array (Fig. 5 (b)–(d)).
//!
//! Functional model of one 8×8 array tile. In outer-product mode every PE
//! accumulates locally under a broadcast scalar; in inner-product mode the
//! PEs' adders are wired into per-row L1 trees (type-A PEs 1,3,5,7 add
//! their local product to a type-B partner's output) and an L2 tree
//! aggregating the row sums. All arithmetic is FP16-rounded, so results
//! match the hardware datapath, and every operation also returns its cycle
//! count under the temporal/spatial mapping of Section IV-A.

use crate::pe::{Pe, PeKind, PeMode};
use veda_tensor::fp16::quantize_f32;
use veda_tensor::Matrix;

/// The two runtime configurations of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayMode {
    /// Inner-product: adder tree across PEs, one output element per cycle
    /// (`q × Kᵀ`).
    InnerProduct,
    /// Outer-product: local accumulation under broadcast input
    /// (`s' × V`).
    OuterProduct,
}

/// Result of a GEMV executed on the array.
#[derive(Debug, Clone, PartialEq)]
pub struct GemvResult {
    /// Output vector (FP16-rounded at every step).
    pub values: Vec<f32>,
    /// Cycles consumed under the array mapping.
    pub cycles: u64,
}

/// A functional 8×8 (configurable) PE array tile.
#[derive(Debug, Clone)]
pub struct PeArray {
    rows: usize,
    cols: usize,
    mode: ArrayMode,
    pes: Vec<Pe>,
}

impl PeArray {
    /// Creates an array of `rows × cols` PEs in outer-product mode.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        let pes = (0..rows * cols)
            .map(|i| {
                // Within each row, odd positions (1-indexed 1,3,5,7) are
                // type-A, even positions type-B (Fig. 5 (d)).
                let col = i % cols;
                Pe::new(if col.is_multiple_of(2) { PeKind::TypeA } else { PeKind::TypeB })
            })
            .collect();
        let mut array = Self { rows, cols, mode: ArrayMode::OuterProduct, pes };
        array.configure(ArrayMode::OuterProduct);
        array
    }

    /// The VEDA tile: 8×8.
    pub fn veda_tile() -> Self {
        Self::new(8, 8)
    }

    /// Number of PEs (spatial capacity per cycle).
    pub fn spatial_capacity(&self) -> usize {
        self.rows * self.cols
    }

    /// Current configuration.
    pub fn mode(&self) -> ArrayMode {
        self.mode
    }

    /// Reconfigures every PE's 2-bit mode control (one-cycle broadcast in
    /// hardware).
    pub fn configure(&mut self, mode: ArrayMode) {
        self.mode = mode;
        let pe_mode = match mode {
            ArrayMode::InnerProduct => PeMode::TransmitPartial,
            ArrayMode::OuterProduct => PeMode::AccumulateLocal,
        };
        for pe in &mut self.pes {
            pe.set_mode(pe_mode);
        }
    }

    /// Adder-tree reduction of up to `cols` products following the type-A /
    /// type-B wiring, FP16-rounded at every adder.
    fn tree_sum(products: &[f32]) -> f32 {
        // Pairwise (1+2), (3+4), ... then fold — the L1/L2 wiring of
        // Fig. 5 (d) is exactly a balanced binary tree with fp16 nodes.
        let mut level: Vec<f32> = products.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                let s = if pair.len() == 2 { pair[0] + pair[1] } else { pair[0] };
                next.push(quantize_f32(s));
            }
            level = next;
        }
        level.first().copied().unwrap_or(0.0)
    }

    /// Inner-product GEMV `q × Kᵀ`: one output per key row, the spatial
    /// dimension is `q.len()` (chunked by the array size), the temporal
    /// dimension is the number of rows.
    ///
    /// # Panics
    ///
    /// Panics if the array is not in inner-product mode or `q` width
    /// mismatches `keys`.
    pub fn inner_gemv(&mut self, q: &[f32], keys: &Matrix) -> GemvResult {
        assert_eq!(self.mode, ArrayMode::InnerProduct, "array not configured for inner product");
        assert_eq!(q.len(), keys.cols(), "query width mismatch");
        let cap = self.spatial_capacity();
        let chunks = q.len().div_ceil(cap).max(1);
        let mut values = Vec::with_capacity(keys.rows());
        for r in 0..keys.rows() {
            let row = keys.row(r);
            let mut partials = Vec::with_capacity(chunks);
            for c in 0..chunks {
                let span = c * cap..((c + 1) * cap).min(q.len());
                // Load each PE and collect the FP16 products.
                let products: Vec<f32> = span
                    .clone()
                    .map(|i| {
                        let pe = &mut self.pes[i % cap];
                        pe.load(q[i], row[i]);
                        pe.product()
                    })
                    .collect();
                partials.push(Self::tree_sum(&products));
            }
            values.push(Self::tree_sum(&partials));
        }
        GemvResult { values, cycles: (keys.rows() as u64) * chunks as u64 }
    }

    /// Outer-product GEMV `s' × V`: the temporal dimension is `s.len()`
    /// (one broadcast scalar per cycle), the spatial dimension is the
    /// output width (chunked by the array size).
    ///
    /// # Panics
    ///
    /// Panics if the array is not in outer-product mode or `s` length
    /// mismatches `values.rows()`.
    pub fn outer_gemv(&mut self, s: &[f32], values_matrix: &Matrix) -> GemvResult {
        assert_eq!(self.mode, ArrayMode::OuterProduct, "array not configured for outer product");
        assert_eq!(s.len(), values_matrix.rows(), "scalar stream length mismatch");
        let cap = self.spatial_capacity();
        let width = values_matrix.cols();
        let chunks = width.div_ceil(cap).max(1);
        let mut out = vec![0.0f32; width];
        for c in 0..chunks {
            let span = c * cap..((c + 1) * cap).min(width);
            // Clear accumulators for this chunk.
            for pe in &mut self.pes {
                pe.set_mode(PeMode::Clear);
                pe.step(0.0, 0.0);
                pe.set_mode(PeMode::AccumulateLocal);
            }
            for (r, &scalar) in s.iter().enumerate() {
                let vrow = values_matrix.row(r);
                for (slot, i) in span.clone().enumerate() {
                    let pe = &mut self.pes[slot];
                    pe.load(scalar, vrow[i]);
                    pe.step(0.0, 0.0);
                }
            }
            for (slot, i) in span.clone().enumerate() {
                out[i] = self.pes[slot].acc();
            }
        }
        GemvResult { values: out, cycles: (s.len() as u64) * chunks as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veda_tensor::ops;

    fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = veda_tensor::rng::seeded(seed);
        Matrix::from_vec(rows, cols, veda_tensor::rng::normal_vec(&mut rng, rows * cols, 0.5)).unwrap()
    }

    #[test]
    fn inner_gemv_matches_reference_within_fp16() {
        let mut arr = PeArray::veda_tile();
        arr.configure(ArrayMode::InnerProduct);
        let k = matrix(10, 64, 1);
        let mut rng = veda_tensor::rng::seeded(2);
        let q = veda_tensor::rng::normal_vec(&mut rng, 64, 0.5);
        let got = arr.inner_gemv(&q, &k);
        let want = ops::gemv_inner(&q, &k);
        assert!(ops::max_abs_diff(&got.values, &want) < 0.05, "fp16 deviation too large");
        assert_eq!(got.cycles, 10); // 64 fits the 8×8 tile: one row per cycle
    }

    #[test]
    fn inner_gemv_chunks_wide_vectors() {
        let mut arr = PeArray::veda_tile();
        arr.configure(ArrayMode::InnerProduct);
        let k = matrix(5, 130, 3);
        let mut rng = veda_tensor::rng::seeded(4);
        let q = veda_tensor::rng::normal_vec(&mut rng, 130, 0.5);
        let got = arr.inner_gemv(&q, &k);
        assert_eq!(got.cycles, 5 * 3); // ceil(130/64) = 3 chunks per row
        let want = ops::gemv_inner(&q, &k);
        assert!(ops::max_abs_diff(&got.values, &want) < 0.08);
    }

    #[test]
    fn outer_gemv_matches_reference_within_fp16() {
        let mut arr = PeArray::veda_tile();
        let v = matrix(12, 64, 5);
        let mut rng = veda_tensor::rng::seeded(6);
        let s: Vec<f32> = veda_tensor::rng::uniform_vec(&mut rng, 12, 0.0, 0.2);
        let got = arr.outer_gemv(&s, &v);
        let want = ops::gemv_outer(&s, &v);
        assert!(ops::max_abs_diff(&got.values, &want) < 0.05);
        assert_eq!(got.cycles, 12);
    }

    #[test]
    fn outer_gemv_chunks_wide_outputs() {
        let mut arr = PeArray::veda_tile();
        let v = matrix(6, 100, 7);
        let s = vec![0.1f32; 6];
        let got = arr.outer_gemv(&s, &v);
        assert_eq!(got.cycles, 6 * 2); // ceil(100/64) = 2 chunks
    }

    #[test]
    fn sequence_growth_costs_one_cycle_per_token() {
        // The headline flexibility claim: l -> l+1 costs exactly one more
        // cycle in inner-product mode (not a whole extra epoch).
        let mut arr = PeArray::veda_tile();
        arr.configure(ArrayMode::InnerProduct);
        let mut rng = veda_tensor::rng::seeded(8);
        let q = veda_tensor::rng::normal_vec(&mut rng, 64, 0.5);
        let k256 = matrix(256, 64, 9);
        let k257 = matrix(257, 64, 9);
        let c256 = arr.inner_gemv(&q, &k256).cycles;
        let c257 = arr.inner_gemv(&q, &k257).cycles;
        assert_eq!(c257, c256 + 1);
    }

    #[test]
    fn reconfiguration_switches_pe_modes() {
        let mut arr = PeArray::veda_tile();
        arr.configure(ArrayMode::InnerProduct);
        assert_eq!(arr.mode(), ArrayMode::InnerProduct);
        arr.configure(ArrayMode::OuterProduct);
        assert_eq!(arr.mode(), ArrayMode::OuterProduct);
    }

    #[test]
    #[should_panic(expected = "not configured for inner product")]
    fn inner_gemv_requires_inner_mode() {
        let mut arr = PeArray::veda_tile();
        let k = matrix(2, 8, 1);
        arr.inner_gemv(&[0.0; 8], &k);
    }

    #[test]
    fn tree_sum_handles_odd_and_empty() {
        assert_eq!(PeArray::tree_sum(&[]), 0.0);
        assert_eq!(PeArray::tree_sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn empty_stream_outer_gemv_is_zero() {
        let mut arr = PeArray::veda_tile();
        let v = Matrix::zeros(0, 16);
        let got = arr.outer_gemv(&[], &v);
        assert_eq!(got.values, vec![0.0; 16]);
        assert_eq!(got.cycles, 0);
    }
}

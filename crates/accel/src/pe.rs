//! The reconfigurable processing element (Fig. 5 (a)).
//!
//! Each PE holds an input register, a weight register and an accumulation
//! register, a multiplier, and an adder whose operands are selected by a
//! 2-bit mode control:
//!
//! * [`PeMode::AccumulateLocal`] — outer-product mode: the adder sums the
//!   local product into the accumulation register;
//! * [`PeMode::TransmitPartial`] — inner-product mode: the adder combines
//!   products/partial sums for the tree (type-A PEs add their own product
//!   to a transmitted operand; type-B PEs add two transmitted operands);
//! * [`PeMode::Clear`] — zeroes the accumulation register;
//! * [`PeMode::Disable`] — the PE holds state and produces nothing.
//!
//! Arithmetic is FP16-rounded after every multiply and add, matching the
//! hardware datapath.

use veda_tensor::fp16::quantize_f32;

/// The 2-bit PE mode control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PeMode {
    /// Accumulate the local product into the local register (outer product).
    #[default]
    AccumulateLocal,
    /// Produce a partial sum for the adder tree (inner product).
    TransmitPartial,
    /// Clear the accumulation register this cycle.
    Clear,
    /// Hold state; no arithmetic.
    Disable,
}

impl PeMode {
    /// Encodes the mode as the hardware 2-bit control value.
    pub fn encode(self) -> u8 {
        match self {
            PeMode::AccumulateLocal => 0b00,
            PeMode::TransmitPartial => 0b01,
            PeMode::Clear => 0b10,
            PeMode::Disable => 0b11,
        }
    }

    /// Decodes a 2-bit control value.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 0b11`.
    pub fn decode(bits: u8) -> Self {
        match bits {
            0b00 => PeMode::AccumulateLocal,
            0b01 => PeMode::TransmitPartial,
            0b10 => PeMode::Clear,
            0b11 => PeMode::Disable,
            _ => panic!("PE mode is a 2-bit field, got {bits:#b}"),
        }
    }
}

/// Whether the PE's adder can take both operands from other PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// One adder input is the local product (odd tree positions 1,3,5,7).
    TypeA,
    /// Both adder inputs come from other PEs (positions 2,4,6,8; the dotted
    /// part of Fig. 5 (a)).
    TypeB,
}

/// One processing element.
#[derive(Debug, Clone)]
pub struct Pe {
    kind: PeKind,
    mode: PeMode,
    input_reg: f32,
    weight_reg: f32,
    acc_reg: f32,
}

impl Pe {
    /// Creates a PE of the given kind, disabled, with cleared registers.
    pub fn new(kind: PeKind) -> Self {
        Self { kind, mode: PeMode::Disable, input_reg: 0.0, weight_reg: 0.0, acc_reg: 0.0 }
    }

    /// The PE kind (tree wiring role).
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// Current mode.
    pub fn mode(&self) -> PeMode {
        self.mode
    }

    /// Sets the 2-bit mode control.
    pub fn set_mode(&mut self, mode: PeMode) {
        self.mode = mode;
    }

    /// Loads the input and weight registers (FP16-rounded).
    pub fn load(&mut self, input: f32, weight: f32) {
        self.input_reg = quantize_f32(input);
        self.weight_reg = quantize_f32(weight);
    }

    /// The local product `input × weight`, FP16-rounded.
    pub fn product(&self) -> f32 {
        quantize_f32(self.input_reg * self.weight_reg)
    }

    /// Executes one cycle in the current mode.
    ///
    /// * `AccumulateLocal`: acc += product, returns `None`.
    /// * `TransmitPartial`: type-A returns `product + transmitted`; type-B
    ///   returns the sum of both transmitted operands (`transmitted +
    ///   transmitted2`).
    /// * `Clear`: zeroes the accumulator, returns `None`.
    /// * `Disable`: returns `None`.
    pub fn step(&mut self, transmitted: f32, transmitted2: f32) -> Option<f32> {
        match self.mode {
            PeMode::AccumulateLocal => {
                self.acc_reg = quantize_f32(self.acc_reg + self.product());
                None
            }
            PeMode::TransmitPartial => match self.kind {
                PeKind::TypeA => Some(quantize_f32(self.product() + transmitted)),
                PeKind::TypeB => Some(quantize_f32(transmitted + transmitted2)),
            },
            PeMode::Clear => {
                self.acc_reg = 0.0;
                None
            }
            PeMode::Disable => None,
        }
    }

    /// Reads the accumulation register.
    pub fn acc(&self) -> f32 {
        self.acc_reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_encoding_round_trips() {
        for mode in [PeMode::AccumulateLocal, PeMode::TransmitPartial, PeMode::Clear, PeMode::Disable] {
            assert_eq!(PeMode::decode(mode.encode()), mode);
        }
    }

    #[test]
    #[should_panic(expected = "2-bit field")]
    fn decode_rejects_wide_values() {
        PeMode::decode(4);
    }

    #[test]
    fn outer_mode_accumulates_locally() {
        let mut pe = Pe::new(PeKind::TypeA);
        pe.set_mode(PeMode::AccumulateLocal);
        pe.load(2.0, 3.0);
        pe.step(0.0, 0.0);
        pe.load(1.0, 4.0);
        pe.step(0.0, 0.0);
        assert_eq!(pe.acc(), 10.0);
    }

    #[test]
    fn clear_zeroes_accumulator() {
        let mut pe = Pe::new(PeKind::TypeA);
        pe.set_mode(PeMode::AccumulateLocal);
        pe.load(1.0, 1.0);
        pe.step(0.0, 0.0);
        pe.set_mode(PeMode::Clear);
        pe.step(0.0, 0.0);
        assert_eq!(pe.acc(), 0.0);
    }

    #[test]
    fn type_a_adds_local_product_to_transmitted() {
        let mut pe = Pe::new(PeKind::TypeA);
        pe.set_mode(PeMode::TransmitPartial);
        pe.load(2.0, 2.0);
        assert_eq!(pe.step(5.0, 0.0), Some(9.0));
    }

    #[test]
    fn type_b_adds_two_transmitted_operands() {
        let mut pe = Pe::new(PeKind::TypeB);
        pe.set_mode(PeMode::TransmitPartial);
        pe.load(9.0, 9.0); // local product must be ignored
        assert_eq!(pe.step(3.0, 4.0), Some(7.0));
    }

    #[test]
    fn disabled_pe_is_inert() {
        let mut pe = Pe::new(PeKind::TypeB);
        pe.set_mode(PeMode::Disable);
        pe.load(1.0, 1.0);
        assert_eq!(pe.step(1.0, 1.0), None);
        assert_eq!(pe.acc(), 0.0);
    }

    #[test]
    fn datapath_is_fp16_rounded() {
        let mut pe = Pe::new(PeKind::TypeA);
        pe.set_mode(PeMode::AccumulateLocal);
        // 0.1 is not exactly representable in FP16.
        pe.load(0.1, 1.0);
        pe.step(0.0, 0.0);
        assert_eq!(pe.acc(), veda_tensor::fp16::quantize_f32(0.1));
    }
}

//! Property-based tests on the timing model: invariants that must hold
//! for any cache length, architecture and variant.

use proptest::prelude::*;
use veda_accel::arch::{ArchConfig, DataflowVariant};
use veda_accel::attention::{
    average_generation_attention_cycles, decode_attention_cycles, decode_attention_cycles_per_head,
    eviction_speedup,
};

proptest! {
    #[test]
    fn latency_is_monotone_in_cache_length(
        l in 1usize..4096,
        delta in 1usize..512,
        variant_idx in 0usize..3,
    ) {
        let arch = ArchConfig::veda();
        let v = DataflowVariant::ALL[variant_idx];
        prop_assert!(
            decode_attention_cycles(&arch, v, l + delta) >= decode_attention_cycles(&arch, v, l),
            "latency decreased with longer cache"
        );
    }

    #[test]
    fn variant_ordering_is_universal(l in 1usize..4096) {
        let arch = ArchConfig::veda();
        let base = decode_attention_cycles(&arch, DataflowVariant::Baseline, l);
        let f = decode_attention_cycles(&arch, DataflowVariant::Flexible, l);
        let fe = decode_attention_cycles(&arch, DataflowVariant::FlexibleElementSerial, l);
        prop_assert!(base >= f, "baseline {base} < flexible {f} at l={l}");
        prop_assert!(f >= fe, "flexible {f} < element-serial {fe} at l={l}");
    }

    #[test]
    fn flexible_variants_grow_smoothly(l in 1usize..4095) {
        // The headline flexibility property: one more cached token costs at
        // most a few cycles per head, never a whole epoch.
        let arch = ArchConfig::veda();
        for v in [DataflowVariant::Flexible, DataflowVariant::FlexibleElementSerial] {
            let delta = decode_attention_cycles_per_head(&arch, v, l + 1)
                - decode_attention_cycles_per_head(&arch, v, l);
            prop_assert!(delta <= 4, "{v}: jump of {delta} cycles at l={l}");
        }
    }

    #[test]
    fn eviction_speedup_is_at_least_one(
        gen in 1usize..2048,
        ratio_pct in 10u32..100,
    ) {
        let arch = ArchConfig::veda();
        let s = eviction_speedup(&arch, 512, gen, f64::from(ratio_pct) / 100.0);
        prop_assert!(s >= 0.99, "speedup {s} below 1");
    }

    #[test]
    fn average_latency_with_budget_never_exceeds_unbudgeted(
        gen in 1usize..1024,
        budget in 64usize..2048,
    ) {
        let arch = ArchConfig::veda();
        let v = DataflowVariant::FlexibleElementSerial;
        let free = average_generation_attention_cycles(&arch, v, 512, gen, None);
        let capped = average_generation_attention_cycles(&arch, v, 512, gen, Some(budget));
        prop_assert!(capped <= free + 1e-9, "budget made things slower: {capped} vs {free}");
    }

    #[test]
    fn more_macs_never_hurt_flexible_variants(
        l in 1usize..2048,
        lanes in 1usize..8,
    ) {
        // Only the flexible dataflow is guaranteed to benefit from a wider
        // array; the fixed-epoch baseline can LOSE (its s'×V pads l to
        // whole epochs of the array size — the Section I pathology). The
        // baseline's non-monotonicity is asserted separately below.
        let mut small = ArchConfig::veda();
        small.pe_lanes = lanes;
        let mut big = small.clone();
        big.pe_lanes = lanes * 2;
        for v in [DataflowVariant::Flexible, DataflowVariant::FlexibleElementSerial] {
            prop_assert!(
                decode_attention_cycles(&big, v, l) <= decode_attention_cycles(&small, v, l),
                "{v}: doubling MACs increased latency at l={l}"
            );
        }
    }
}

#[test]
fn baseline_can_get_slower_with_a_wider_array() {
    // l = 641 on a 256-MAC array pads to 768; on a 512-MAC array it pads
    // to 1024 — the fixed dataflow wastes the extra width. The flexible
    // dataflow has no such pathology (property above).
    let mut narrow = ArchConfig::veda();
    narrow.pe_lanes = 4; // 256 MACs
    let mut wide = ArchConfig::veda();
    wide.pe_lanes = 8; // 512 MACs
    let l = 641;
    let narrow_cycles = decode_attention_cycles(&narrow, DataflowVariant::Baseline, l);
    let wide_cycles = decode_attention_cycles(&wide, DataflowVariant::Baseline, l);
    assert!(
        wide_cycles > narrow_cycles,
        "expected the fixed-epoch baseline to lose from extra width: {wide_cycles} vs {narrow_cycles}"
    );
}

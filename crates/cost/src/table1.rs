//! Table I generator: the VEDA hardware breakdown.

use crate::modules::{ModuleCost, UnitCosts};
use veda_accel::arch::ArchConfig;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Module name.
    pub module: &'static str,
    /// Parameter summary, as printed in the paper.
    pub parameters: String,
    /// Cost estimate.
    pub cost: ModuleCost,
}

/// The full Table I: per-module rows plus the total.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Per-module rows in the paper's order.
    pub rows: Vec<Table1Row>,
    /// Chip total.
    pub total: ModuleCost,
}

impl Table1 {
    /// Fraction of total area consumed by a module.
    pub fn area_fraction(&self, module: &str) -> Option<f64> {
        let row = self.rows.iter().find(|r| r.module == module)?;
        Some(row.cost.area_mm2 / self.total.area_mm2)
    }

    /// The paper's §VI hardware claims as predicates: SFU below 3 % of
    /// area, voting engine around 6.5 % overhead, PE + buffer dominant.
    pub fn claims_hold(&self) -> bool {
        let sfu = self.area_fraction("Special Function Unit").unwrap_or(1.0);
        let voting = self.area_fraction("Voting Engine").unwrap_or(1.0);
        let pe = self.area_fraction("PE Array").unwrap_or(0.0);
        let buf = self.area_fraction("On-chip Buffer").unwrap_or(0.0);
        sfu < 0.03 && (voting - 0.065).abs() < 0.015 && pe + buf > 0.8
    }

    /// Renders the table as aligned text (for report binaries).
    pub fn render(&self) -> String {
        let mut out =
            format!("{:<24} {:<44} {:>10} {:>10}\n", "Module", "Parameters", "Area/mm2", "Power/mW");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<24} {:<44} {:>10.3} {:>10.2}\n",
                r.module, r.parameters, r.cost.area_mm2, r.cost.power_mw
            ));
        }
        out.push_str(&format!(
            "{:<24} {:<44} {:>10.3} {:>10.2}\n",
            "Total", "TSMC 28nm, 1GHz, FP16", self.total.area_mm2, self.total.power_mw
        ));
        out
    }
}

/// Generates Table I for an architecture.
pub fn table1(arch: &ArchConfig) -> Table1 {
    let unit = UnitCosts::default();
    let rows = vec![
        Table1Row {
            module: "PE Array",
            parameters: format!("{}*{}*{} Reconfigurable PEs", arch.pe_rows, arch.pe_cols, arch.pe_lanes),
            cost: unit.pe_array(arch),
        },
        Table1Row {
            module: "Voting Engine",
            parameters: format!(
                "{}*16bit FIFO, {}*16bit Vote Buffer & Others",
                arch.vote_capacity, arch.vote_capacity
            ),
            cost: unit.voting_engine(arch),
        },
        Table1Row {
            module: "Special Function Unit",
            parameters: format!(
                "{} EXP, {} Divider, {} Sqrt & {} Multiplier and {} Adder, {}x16bit FIFO",
                arch.sfu.exp_units,
                arch.sfu.div_units,
                arch.sfu.sqrt_units,
                arch.sfu.mul_units,
                arch.sfu.add_units,
                arch.sfu.fifo_depth
            ),
            cost: unit.sfu(arch),
        },
        Table1Row {
            module: "Schedule",
            parameters: "System Control & PE Array Config".to_owned(),
            cost: unit.schedule(arch),
        },
        Table1Row {
            module: "On-chip Buffer",
            parameters: format!("{}KB SRAM", arch.sram_bytes / 1024),
            cost: unit.sram(arch),
        },
    ];
    let total = rows.iter().fold(ModuleCost::default(), |acc, r| acc.plus(r.cost));
    Table1 { rows, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reproduces_paper_totals() {
        let t = table1(&ArchConfig::veda());
        assert!((t.total.area_mm2 - 1.058).abs() < 0.01, "total area {}", t.total.area_mm2);
        assert!((t.total.power_mw - 375.26).abs() < 5.0, "total power {}", t.total.power_mw);
    }

    #[test]
    fn paper_claims_hold() {
        // §VI: "SFU consumes less than 3% ... voting engine incurs a small
        // 6.5% of overhead ... PE and buffer dominate".
        let t = table1(&ArchConfig::veda());
        assert!(t.claims_hold(), "claims failed:\n{}", t.render());
    }

    #[test]
    fn render_contains_all_modules() {
        let s = table1(&ArchConfig::veda()).render();
        for m in ["PE Array", "Voting Engine", "Special Function Unit", "Schedule", "On-chip Buffer", "Total"]
        {
            assert!(s.contains(m), "missing {m} in:\n{s}");
        }
    }

    #[test]
    fn area_fraction_of_unknown_module_is_none() {
        let t = table1(&ArchConfig::veda());
        assert_eq!(t.area_fraction("FPU"), None);
    }
}

//! Table II generator: comparison with related accelerators and the
//! end-to-end GPU comparison.

use crate::gpu::GpuModel;
use crate::scaling::{efficiency_to_28nm, TechNode};
use crate::table1::table1;
use veda_accel::arch::ArchConfig;
use veda_accel::schedule::{DecodeScheduler, LlamaShape};
use veda_accel::DataflowVariant;
use veda_mem::HbmConfig;

/// One accelerator row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorRow {
    /// Accelerator name.
    pub name: &'static str,
    /// Workload support level, as the paper words it.
    pub support: &'static str,
    /// Technology node.
    pub node: TechNode,
    /// Area in mm² (at its native node).
    pub area_mm2: f64,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// Energy efficiency in GOPS/W (native node).
    pub efficiency_gops_w: f64,
}

impl AcceleratorRow {
    /// Energy efficiency scaled to 28 nm for a fair comparison.
    pub fn efficiency_at_28nm(&self) -> f64 {
        efficiency_to_28nm(self.efficiency_gops_w, self.node)
    }
}

/// The end-to-end GPU comparison block of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuComparison {
    /// Single-VEDA decode throughput in tokens/s.
    pub veda_tokens_per_s: f64,
    /// GPU decode throughput in tokens/s.
    pub gpu_tokens_per_s: f64,
    /// 8-VEDA throughput relative to the GPU.
    pub veda8_speedup_vs_gpu: f64,
    /// VEDA-to-GPU energy-efficiency ratio (tokens/J over tokens/J),
    /// counting VEDA core + off-chip HBM.
    pub energy_efficiency_ratio: f64,
}

/// The full Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// Accelerator comparison rows (published numbers for the baselines,
    /// model outputs for VEDA).
    pub accelerators: Vec<AcceleratorRow>,
    /// End-to-end GPU comparison.
    pub gpu: GpuComparison,
}

impl Table2 {
    /// The VEDA row.
    ///
    /// # Panics
    ///
    /// Panics if the table has no VEDA row (cannot happen for
    /// [`table2`]-built values).
    pub fn veda_row(&self) -> &AcceleratorRow {
        self.accelerators.iter().find(|r| r.name == "VEDA").expect("VEDA row present")
    }

    /// The headline claims of Table II: smallest area, highest energy
    /// efficiency (also after technology scaling).
    pub fn claims_hold(&self) -> bool {
        let veda = self.veda_row();
        self.accelerators.iter().all(|r| {
            r.name == "VEDA"
                || (veda.area_mm2 < r.area_mm2
                    && veda.efficiency_gops_w > r.efficiency_gops_w
                    && veda.efficiency_at_28nm() > r.efficiency_at_28nm())
        })
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<10} {:<12} {:>6} {:>10} {:>12} {:>14} {:>16}\n",
            "Accel.", "Support", "Node", "Area/mm2", "GOPS", "GOPS/W", "GOPS/W @28nm"
        );
        for r in &self.accelerators {
            out.push_str(&format!(
                "{:<10} {:<12} {:>6} {:>10.2} {:>12.0} {:>14.0} {:>16.0}\n",
                r.name,
                r.support,
                r.node.nanometers(),
                r.area_mm2,
                r.throughput_gops,
                r.efficiency_gops_w,
                r.efficiency_at_28nm()
            ));
        }
        out.push_str(&format!(
            "\nEnd-to-end vs GPU: VEDA {:.1} tokens/s, GPU {:.1} tokens/s, 8-VEDA {:.2}x GPU, energy efficiency {:.1}x\n",
            self.gpu.veda_tokens_per_s,
            self.gpu.gpu_tokens_per_s,
            self.gpu.veda8_speedup_vs_gpu,
            self.gpu.energy_efficiency_ratio
        ));
        out
    }
}

/// Builds Table II: published Sanger/SpAtten numbers, VEDA numbers from
/// this workspace's models, and the GPU comparison from the roofline and
/// energy models.
pub fn table2(arch: &ArchConfig) -> Table2 {
    let t1 = table1(arch);
    // Effective throughput: peak derated by the attention-phase utilization
    // of the flexible dataflow (the paper reports 245 GOPS of 256 peak).
    let utilization = 0.957;
    let veda_gops = arch.peak_gops() * utilization;
    let veda_eff = veda_gops / (t1.total.power_mw / 1000.0);

    let accelerators = vec![
        AcceleratorRow {
            name: "Sanger",
            support: "Attention",
            node: TechNode::N55,
            area_mm2: 16.9,
            throughput_gops: 529.0,
            efficiency_gops_w: 192.0,
        },
        AcceleratorRow {
            name: "SpAtten",
            support: "Transformer",
            node: TechNode::N40,
            area_mm2: 1.55,
            throughput_gops: 360.0,
            efficiency_gops_w: 382.0,
        },
        AcceleratorRow {
            name: "VEDA",
            support: "LLM",
            node: TechNode::N28,
            area_mm2: t1.total.area_mm2,
            throughput_gops: veda_gops,
            efficiency_gops_w: veda_eff,
        },
    ];

    // End-to-end decode comparison on Llama-2 7B.
    let shape = LlamaShape::llama2_7b();
    let sched = DecodeScheduler::new(
        arch.clone(),
        shape,
        HbmConfig::default(),
        DataflowVariant::FlexibleElementSerial,
    );
    let veda_tps = sched.tokens_per_second(512);
    let bytes_per_token = shape.weight_bytes_per_token() + shape.kv_bytes_per_token(512);
    let gpu = GpuModel::rtx4090();
    let gpu_tps = gpu.decode_tokens_per_second(bytes_per_token);

    let energy = crate::energy::EnergyModel::for_arch(arch);
    let veda_tpj = energy.tokens_per_joule(veda_tps, bytes_per_token);
    let gpu_tpj = gpu.tokens_per_joule(bytes_per_token);

    Table2 {
        accelerators,
        gpu: GpuComparison {
            veda_tokens_per_s: veda_tps,
            gpu_tokens_per_s: gpu_tps,
            veda8_speedup_vs_gpu: 8.0 * veda_tps / gpu_tps,
            energy_efficiency_ratio: veda_tpj / gpu_tpj,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table2 {
        table2(&ArchConfig::veda())
    }

    #[test]
    fn veda_numbers_match_paper_scale() {
        let t = t();
        let veda = t.veda_row();
        assert!((veda.throughput_gops - 245.0).abs() < 5.0, "GOPS {}", veda.throughput_gops);
        assert!((veda.efficiency_gops_w - 653.0).abs() < 30.0, "GOPS/W {}", veda.efficiency_gops_w);
        assert!((veda.area_mm2 - 1.06).abs() < 0.02, "area {}", veda.area_mm2);
    }

    #[test]
    fn headline_claims_hold() {
        let t = t();
        assert!(t.claims_hold(), "claims failed:\n{}", t.render());
    }

    #[test]
    fn veda_throughput_in_paper_band() {
        // Paper: 18.6 tokens/s for one VEDA.
        let t = t();
        assert!((12.0..25.0).contains(&t.gpu.veda_tokens_per_s), "tokens/s {}", t.gpu.veda_tokens_per_s);
    }

    #[test]
    fn veda8_speedup_near_paper() {
        // Paper: 8-VEDA = 2.86× over the GPU.
        let t = t();
        assert!((1.8..4.0).contains(&t.gpu.veda8_speedup_vs_gpu), "speedup {}", t.gpu.veda8_speedup_vs_gpu);
    }

    #[test]
    fn energy_efficiency_ratio_is_tens_of_x() {
        // Paper: 38.8× average energy efficiency (core + off-chip HBM).
        let t = t();
        assert!(
            (20.0..60.0).contains(&t.gpu.energy_efficiency_ratio),
            "energy ratio {}",
            t.gpu.energy_efficiency_ratio
        );
    }

    #[test]
    fn render_lists_all_accelerators() {
        let s = t().render();
        for name in ["Sanger", "SpAtten", "VEDA", "tokens/s"] {
            assert!(s.contains(name), "missing {name}:\n{s}");
        }
    }
}

//! # veda-cost
//!
//! Analytic area / power / energy models for the VEDA reproduction:
//!
//! * [`modules`] — per-module area and power models (PE array, voting
//!   engine, SFU, scheduler, on-chip SRAM), with unit costs calibrated so
//!   the paper's exact configuration reproduces Table I. The SRAM/FIFO
//!   curves play the role CACTI plays in the paper.
//! * [`table1`] — the Table I generator (per-module breakdown + totals),
//!   including the paper's two hardware claims as checkable predicates
//!   (SFU < 3 % of area, voting engine ≈ 6.5 % overhead).
//! * [`scaling`] — DeepScaleTool-style technology scaling between nodes,
//!   used to normalize the related-accelerator comparison.
//! * [`gpu`] — a roofline model of the NVIDIA RTX 4090 for the end-to-end
//!   comparison (decode is bandwidth-bound; single-batch efficiency is an
//!   explicit parameter).
//! * [`table2`] — the Table II generator: Sanger / SpAtten / VEDA plus the
//!   GPU energy-efficiency and throughput comparison.
//! * [`energy`] — per-token energy accounting (core + HBM traffic).

pub mod energy;
pub mod gpu;
pub mod modules;
pub mod scaling;
pub mod table1;
pub mod table2;

pub use energy::EnergyModel;
pub use gpu::GpuModel;
pub use modules::{ModuleCost, UnitCosts};
pub use scaling::TechNode;
pub use table1::{table1, Table1};
pub use table2::{table2, Table2};

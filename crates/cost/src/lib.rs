//! # veda-cost
//!
//! Analytic area / power / energy models for the VEDA reproduction:
//!
//! * [`modules`] — per-module area and power models (PE array, voting
//!   engine, SFU, scheduler, on-chip SRAM), with unit costs calibrated so
//!   the paper's exact configuration reproduces Table I. The SRAM/FIFO
//!   curves play the role CACTI plays in the paper.
//! * [`table1`](mod@table1) — the Table I generator (per-module breakdown + totals),
//!   including the paper's two hardware claims as checkable predicates
//!   (SFU < 3 % of area, voting engine ≈ 6.5 % overhead).
//! * [`scaling`] — DeepScaleTool-style technology scaling between nodes,
//!   used to normalize the related-accelerator comparison.
//! * [`gpu`] — a roofline model of the NVIDIA RTX 4090 for the end-to-end
//!   comparison (decode is bandwidth-bound; single-batch efficiency is an
//!   explicit parameter).
//! * [`table2`](mod@table2) — the Table II generator: Sanger / SpAtten / VEDA plus the
//!   GPU energy-efficiency and throughput comparison.
//! * [`energy`] — per-token energy accounting (core + HBM traffic).
//!
//! ## What energy is charged for
//!
//! [`EnergyModel::token_energy_mj`](energy::EnergyModel::token_energy_mj)
//! charges compute cycles plus the **bytes actually streamed** from HBM
//! for the step: the weight stream and the full resident KV span the
//! token attends over. Byte *residency* optimizations upstream (the
//! engine's shared-prefix KV reuse, which keeps a common span in memory
//! once) therefore do not change decode energy — every decode step
//! still reads the whole span — they save prefill work and capacity,
//! which this crate's models see as fewer prefill chunks costed and
//! more concurrent sessions, respectively.

// Every public item in the cost models is documented; rustdoc enforces
// it so the API surface cannot silently rot.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod energy;
pub mod gpu;
pub mod modules;
pub mod scaling;
pub mod table1;
pub mod table2;

pub use energy::EnergyModel;
pub use gpu::GpuModel;
pub use modules::{ModuleCost, UnitCosts};
pub use scaling::TechNode;
pub use table1::{table1, Table1};
pub use table2::{table2, Table2};

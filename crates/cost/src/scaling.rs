//! DeepScaleTool-style technology scaling.
//!
//! The paper normalizes comparisons across nodes ("it remains true after
//! technology scaling \[13\]"). This module provides per-node area and
//! energy factors relative to 28 nm, interpolating the published
//! deep-submicron scaling data: area scales roughly with the square of the
//! drawn dimension (with a derating below 28 nm, irrelevant here), and
//! energy per operation improves more slowly than area.

/// A supported technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 55 nm (Sanger).
    N55,
    /// 40 nm (SpAtten).
    N40,
    /// 28 nm (VEDA).
    N28,
    /// 16 nm.
    N16,
}

impl TechNode {
    /// The node's drawn dimension in nm.
    pub fn nanometers(self) -> f64 {
        match self {
            TechNode::N55 => 55.0,
            TechNode::N40 => 40.0,
            TechNode::N28 => 28.0,
            TechNode::N16 => 16.0,
        }
    }

    /// Parses from a nanometer figure.
    pub fn from_nanometers(nm: u32) -> Option<TechNode> {
        match nm {
            55 => Some(TechNode::N55),
            40 => Some(TechNode::N40),
            28 => Some(TechNode::N28),
            16 => Some(TechNode::N16),
            _ => None,
        }
    }

    /// Area factor relative to 28 nm (> 1 for older nodes): the classical
    /// (node/28)² dense-logic scaling.
    pub fn area_factor_vs_28(self) -> f64 {
        let r = self.nanometers() / 28.0;
        r * r
    }

    /// Energy-per-op factor relative to 28 nm (> 1 for older nodes):
    /// sub-quadratic — DeepScaleTool reports roughly linear-to-1.5-power
    /// improvement; we use `(node/28)^1.4`.
    pub fn energy_factor_vs_28(self) -> f64 {
        (self.nanometers() / 28.0).powf(1.4)
    }
}

/// Scales an area measured at `from` to its 28 nm equivalent.
pub fn area_to_28nm(area_mm2: f64, from: TechNode) -> f64 {
    area_mm2 / from.area_factor_vs_28()
}

/// Scales an energy-efficiency (GOPS/W) measured at `from` to its 28 nm
/// equivalent (efficiency improves at newer nodes, so older-node numbers
/// scale *up*).
pub fn efficiency_to_28nm(gops_per_w: f64, from: TechNode) -> f64 {
    gops_per_w * from.energy_factor_vs_28()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_identity_at_28() {
        assert!((TechNode::N28.area_factor_vs_28() - 1.0).abs() < 1e-12);
        assert!((TechNode::N28.energy_factor_vs_28() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn older_nodes_are_bigger_and_hungrier() {
        assert!(TechNode::N55.area_factor_vs_28() > TechNode::N40.area_factor_vs_28());
        assert!(TechNode::N40.area_factor_vs_28() > 1.0);
        assert!(TechNode::N55.energy_factor_vs_28() > 1.0);
    }

    #[test]
    fn area_scaling_is_quadratic() {
        // 55 nm -> 28 nm shrinks area by (55/28)² ≈ 3.86.
        let scaled = area_to_28nm(16.9, TechNode::N55);
        assert!((scaled - 16.9 / 3.858).abs() < 0.05, "scaled {scaled}");
    }

    #[test]
    fn efficiency_scaling_helps_older_designs() {
        let e = efficiency_to_28nm(192.0, TechNode::N55);
        assert!(e > 192.0 && e < 192.0 * 3.0, "efficiency {e}");
    }

    #[test]
    fn node_parsing() {
        assert_eq!(TechNode::from_nanometers(40), Some(TechNode::N40));
        assert_eq!(TechNode::from_nanometers(12), None);
        assert_eq!(TechNode::N16.nanometers(), 16.0);
    }
}

//! Per-token energy accounting: core power × time + HBM traffic energy.

use crate::modules::UnitCosts;
use veda_accel::arch::ArchConfig;

/// Energy model of a VEDA-class chip plus its HBM.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Core power in mW (from the module model).
    pub core_power_mw: f64,
    /// HBM access energy in pJ per byte.
    pub hbm_pj_per_byte: f64,
    /// Clock in GHz.
    pub clock_ghz: f64,
}

impl EnergyModel {
    /// Builds the model for an architecture using calibrated unit costs
    /// and an HBM energy of 16 pJ/byte (2 pJ/bit, optimistic HBM2E).
    pub fn for_arch(arch: &ArchConfig) -> Self {
        let total = UnitCosts::default().total(arch);
        Self { core_power_mw: total.power_mw, hbm_pj_per_byte: 16.0, clock_ghz: arch.clock_ghz }
    }

    /// Energy of one token in millijoules given its cycle count and HBM
    /// traffic.
    pub fn token_energy_mj(&self, cycles: u64, hbm_bytes: u64) -> f64 {
        let seconds = cycles as f64 / (self.clock_ghz * 1e9);
        let core_mj = self.core_power_mw * seconds; // mW × s = mJ
        let hbm_mj = hbm_bytes as f64 * self.hbm_pj_per_byte * 1e-9; // pJ → mJ
        core_mj + hbm_mj
    }

    /// Average total power in watts while decoding at `tokens_per_second`
    /// with `hbm_bytes` per token.
    pub fn average_power_w(&self, tokens_per_second: f64, hbm_bytes: u64) -> f64 {
        let core_w = self.core_power_mw / 1000.0;
        let hbm_w = tokens_per_second * hbm_bytes as f64 * self.hbm_pj_per_byte * 1e-12;
        core_w + hbm_w
    }

    /// Tokens per joule at the given operating point.
    pub fn tokens_per_joule(&self, tokens_per_second: f64, hbm_bytes: u64) -> f64 {
        tokens_per_second / self.average_power_w(tokens_per_second, hbm_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_power_matches_table1_total() {
        let m = EnergyModel::for_arch(&ArchConfig::veda());
        assert!((m.core_power_mw - 375.26).abs() < 5.0, "core power {}", m.core_power_mw);
    }

    #[test]
    fn token_energy_splits_core_and_hbm() {
        let m = EnergyModel { core_power_mw: 1000.0, hbm_pj_per_byte: 10.0, clock_ghz: 1.0 };
        // 1e9 cycles at 1 GHz = 1 s => 1000 mJ core; 1e9 bytes × 10 pJ = 10 mJ.
        let e = m.token_energy_mj(1_000_000_000, 1_000_000_000);
        assert!((e - 1010.0).abs() < 1e-6);
    }

    #[test]
    fn average_power_includes_traffic() {
        let m = EnergyModel::for_arch(&ArchConfig::veda());
        // 18.6 tokens/s × 13.9 GB/token ≈ 258 GB/s × 16 pJ/B ≈ 4.1 W.
        let p = m.average_power_w(18.6, 13_900_000_000);
        assert!((3.0..6.0).contains(&p), "power {p}");
    }

    #[test]
    fn tokens_per_joule_decreases_with_traffic() {
        let m = EnergyModel::for_arch(&ArchConfig::veda());
        assert!(m.tokens_per_joule(18.6, 1_000_000_000) > m.tokens_per_joule(18.6, 20_000_000_000));
    }
}

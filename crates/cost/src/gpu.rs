//! Roofline model of a discrete GPU for the end-to-end comparison
//! (Table II, bottom).
//!
//! Single-batch LLM decode on a GPU is bandwidth-bound: every token
//! streams the full weight set through HBM/GDDR. Achieved throughput is
//! therefore `efficiency × bandwidth / bytes_per_token`, where
//! `efficiency` captures kernel-launch overhead, attention memory
//! irregularity and the fact that single-batch GEMV cannot saturate the
//! memory system — measured single-batch Llama-2 7B FP16 decode on an RTX
//! 4090 lands near 35–55 tokens/s depending on the stack, i.e. an
//! efficiency of roughly 0.5–0.75.

/// A bandwidth-roofline GPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Marketing name.
    pub name: &'static str,
    /// Memory bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
    /// Peak FP16 throughput in TFLOPS (for the compute roofline arm).
    pub fp16_tflops: f64,
    /// Board power in W.
    pub power_w: f64,
    /// Fraction of peak bandwidth achieved on single-batch decode.
    pub decode_efficiency: f64,
}

impl GpuModel {
    /// NVIDIA GeForce RTX 4090 (public specifications), with a measured
    /// single-batch decode efficiency of 0.7.
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX 4090",
            bandwidth_gb_s: 1008.0,
            fp16_tflops: 82.58,
            power_w: 450.0,
            decode_efficiency: 0.7,
        }
    }

    /// Decode throughput in tokens/s for a model streaming
    /// `weight_bytes_per_token` (plus KV traffic) per token.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_token` is zero.
    pub fn decode_tokens_per_second(&self, bytes_per_token: u64) -> f64 {
        assert!(bytes_per_token > 0, "bytes per token must be positive");
        let bandwidth_arm = self.decode_efficiency * self.bandwidth_gb_s * 1e9 / bytes_per_token as f64;
        // Compute arm: 2 FLOPs per streamed FP16 weight byte pair.
        let flops_per_token = bytes_per_token as f64; // 2 FLOPs per 2 bytes
        let compute_arm = self.fp16_tflops * 1e12 / flops_per_token;
        bandwidth_arm.min(compute_arm)
    }

    /// Energy efficiency in tokens per joule at decode.
    pub fn tokens_per_joule(&self, bytes_per_token: u64) -> f64 {
        self.decode_tokens_per_second(bytes_per_token) / self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LLAMA7B_BYTES: u64 = 13_600_000_000;

    #[test]
    fn decode_is_bandwidth_bound_for_7b() {
        let gpu = GpuModel::rtx4090();
        let tps = gpu.decode_tokens_per_second(LLAMA7B_BYTES);
        // 0.7 × 1008 GB/s / 13.6 GB ≈ 52 tokens/s.
        assert!((45.0..60.0).contains(&tps), "tokens/s {tps}");
    }

    #[test]
    fn compute_arm_binds_for_tiny_models() {
        let gpu = GpuModel::rtx4090();
        // A 1 MB "model": bandwidth arm would be ~700k tokens/s; compute
        // arm is ~82.58e12 / 1e6 ≈ 82.6M tokens/s — bandwidth still binds.
        // Force the compute arm with an absurdly low-bandwidth GPU.
        let weird = GpuModel { bandwidth_gb_s: 1e9, ..gpu };
        let tps = weird.decode_tokens_per_second(1_000_000);
        assert!((tps - 82.58e6).abs() / 82.58e6 < 0.01, "tokens/s {tps}");
    }

    #[test]
    fn tokens_per_joule_consistent() {
        let gpu = GpuModel::rtx4090();
        let tpj = gpu.tokens_per_joule(LLAMA7B_BYTES);
        assert!((tpj - gpu.decode_tokens_per_second(LLAMA7B_BYTES) / 450.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bytes per token")]
    fn zero_bytes_rejected() {
        GpuModel::rtx4090().decode_tokens_per_second(0);
    }
}

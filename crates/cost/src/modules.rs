//! Per-module area/power models at TSMC 28 nm, 1 GHz, FP16 datapath.
//!
//! Unit costs are calibrated so the paper's exact configuration (8×8×2
//! PEs, 4096-entry voting engine, the Table I SFU inventory, 256 KB SRAM)
//! reproduces Table I to within rounding. Changing the architecture
//! (bigger arrays, deeper FIFOs, more SFU units) moves the estimates the
//! way a CACTI + synthesis flow would to first order.

use veda_accel::arch::ArchConfig;

/// Area (mm²) and power (mW) of one module.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModuleCost {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Power in mW at 1 GHz.
    pub power_mw: f64,
}

impl ModuleCost {
    /// Component-wise sum.
    pub fn plus(self, other: ModuleCost) -> ModuleCost {
        ModuleCost { area_mm2: self.area_mm2 + other.area_mm2, power_mw: self.power_mw + other.power_mw }
    }

    /// Scales both area and power by a factor.
    pub fn scaled(self, factor: f64) -> ModuleCost {
        ModuleCost { area_mm2: self.area_mm2 * factor, power_mw: self.power_mw * factor }
    }
}

/// Calibrated unit costs at 28 nm / 1 GHz / FP16.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitCosts {
    /// One reconfigurable PE (FP16 multiplier + adder + registers + mode
    /// logic). Calibrated: 128 PEs = 0.493 mm² / 175.64 mW.
    pub pe: ModuleCost,
    /// One KB of single-port SRAM. Calibrated: 256 KB = 0.426 mm² /
    /// 148.82 mW.
    pub sram_per_kb: ModuleCost,
    /// One KB of FIFO storage (dual-ported, pointer logic): SRAM × 1.5.
    pub fifo_per_kb: ModuleCost,
    /// One FP16 exponentiation unit.
    pub exp_unit: ModuleCost,
    /// One FP16 divider.
    pub div_unit: ModuleCost,
    /// One FP16 square-root unit.
    pub sqrt_unit: ModuleCost,
    /// One FP16 multiplier.
    pub mul_unit: ModuleCost,
    /// One FP16 adder.
    pub add_unit: ModuleCost,
    /// Voting-engine comparator/threshold/index logic (fixed).
    pub voting_logic: ModuleCost,
    /// Scheduler / system control / PE-array configuration (fixed).
    pub scheduler: ModuleCost,
}

impl Default for UnitCosts {
    fn default() -> Self {
        let sram_per_kb = ModuleCost { area_mm2: 0.426 / 256.0, power_mw: 148.82 / 256.0 };
        Self {
            pe: ModuleCost { area_mm2: 0.493 / 128.0, power_mw: 175.64 / 128.0 },
            sram_per_kb,
            fifo_per_kb: sram_per_kb.scaled(1.5),
            exp_unit: ModuleCost { area_mm2: 0.0060, power_mw: 2.80 },
            div_unit: ModuleCost { area_mm2: 0.0040, power_mw: 1.90 },
            sqrt_unit: ModuleCost { area_mm2: 0.0030, power_mw: 1.30 },
            mul_unit: ModuleCost { area_mm2: 0.0012, power_mw: 0.55 },
            add_unit: ModuleCost { area_mm2: 0.0006, power_mw: 0.25 },
            voting_logic: ModuleCost { area_mm2: 0.0290, power_mw: 11.90 },
            scheduler: ModuleCost { area_mm2: 0.041, power_mw: 11.20 },
        }
    }
}

impl UnitCosts {
    /// PE array cost for an architecture.
    pub fn pe_array(&self, arch: &ArchConfig) -> ModuleCost {
        self.pe.scaled(arch.macs() as f64)
    }

    /// Voting engine cost: the s' FIFO (capacity × 16 bit), the vote-count
    /// buffer (capacity × 16 bit), and the fixed comparator/threshold
    /// logic.
    pub fn voting_engine(&self, arch: &ArchConfig) -> ModuleCost {
        let storage_kb = 2.0 * (arch.vote_capacity as f64 * 2.0) / 1024.0;
        self.fifo_per_kb.scaled(storage_kb).plus(self.voting_logic)
    }

    /// Special Function Unit cost from its resource inventory.
    pub fn sfu(&self, arch: &ArchConfig) -> ModuleCost {
        let s = &arch.sfu;
        let fifo_kb = (s.fifo_depth as f64 * 2.0) / 1024.0;
        self.exp_unit
            .scaled(s.exp_units as f64)
            .plus(self.div_unit.scaled(s.div_units as f64))
            .plus(self.sqrt_unit.scaled(s.sqrt_units as f64))
            .plus(self.mul_unit.scaled(s.mul_units as f64))
            .plus(self.add_unit.scaled(s.add_units as f64))
            .plus(self.fifo_per_kb.scaled(fifo_kb))
    }

    /// On-chip buffer cost.
    pub fn sram(&self, arch: &ArchConfig) -> ModuleCost {
        self.sram_per_kb.scaled(arch.sram_bytes as f64 / 1024.0)
    }

    /// Scheduler cost (fixed control logic).
    pub fn schedule(&self, _arch: &ArchConfig) -> ModuleCost {
        self.scheduler
    }

    /// Total chip cost.
    pub fn total(&self, arch: &ArchConfig) -> ModuleCost {
        self.pe_array(arch)
            .plus(self.voting_engine(arch))
            .plus(self.sfu(arch))
            .plus(self.sram(arch))
            .plus(self.schedule(arch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn veda() -> ArchConfig {
        ArchConfig::veda()
    }

    #[test]
    fn pe_array_matches_table1() {
        let c = UnitCosts::default().pe_array(&veda());
        assert!((c.area_mm2 - 0.493).abs() < 1e-6);
        assert!((c.power_mw - 175.64).abs() < 1e-6);
    }

    #[test]
    fn sram_matches_table1() {
        let c = UnitCosts::default().sram(&veda());
        assert!((c.area_mm2 - 0.426).abs() < 1e-6);
        assert!((c.power_mw - 148.82).abs() < 1e-6);
    }

    #[test]
    fn voting_engine_near_table1() {
        // Table I: 0.069 mm² / 26.41 mW.
        let c = UnitCosts::default().voting_engine(&veda());
        assert!((c.area_mm2 - 0.069).abs() < 0.005, "area {}", c.area_mm2);
        assert!((c.power_mw - 26.41).abs() < 2.0, "power {}", c.power_mw);
    }

    #[test]
    fn sfu_near_table1() {
        // Table I: 0.029 mm² / 13.19 mW.
        let c = UnitCosts::default().sfu(&veda());
        assert!((c.area_mm2 - 0.029).abs() < 0.003, "area {}", c.area_mm2);
        assert!((c.power_mw - 13.19).abs() < 1.5, "power {}", c.power_mw);
    }

    #[test]
    fn total_near_paper_chip() {
        // Table I: total 1.058 mm² / 375.26 mW.
        let c = UnitCosts::default().total(&veda());
        assert!((c.area_mm2 - 1.058).abs() < 0.01, "area {}", c.area_mm2);
        assert!((c.power_mw - 375.26).abs() < 5.0, "power {}", c.power_mw);
    }

    #[test]
    fn costs_scale_with_architecture() {
        let unit = UnitCosts::default();
        let mut big = veda();
        big.pe_lanes = 4;
        assert!(unit.pe_array(&big).area_mm2 > unit.pe_array(&veda()).area_mm2 * 1.9);
        let mut deep = veda();
        deep.vote_capacity = 2048;
        assert!(unit.voting_engine(&deep).area_mm2 < unit.voting_engine(&veda()).area_mm2);
    }

    #[test]
    fn plus_and_scaled_are_componentwise() {
        let a = ModuleCost { area_mm2: 1.0, power_mw: 2.0 };
        let b = ModuleCost { area_mm2: 0.5, power_mw: 0.25 };
        let s = a.plus(b).scaled(2.0);
        assert!((s.area_mm2 - 3.0).abs() < 1e-12);
        assert!((s.power_mw - 4.5).abs() < 1e-12);
    }
}
